"""CRR — Centrality Ranking with Rewiring (Algorithm 1).

Phase 1 keeps the ``[P] = [p·|E|]`` edges of highest *edge betweenness
centrality* (ties broken randomly, as the paper specifies), preserving the
bridges that hold the topology together.  Phase 2 runs ``steps`` random
swap attempts: pick ``e₁`` from the kept set and ``e₂`` from the shed set,
and exchange them iff doing so lowers the total degree discrepancy ``Δ``.
The edge count stays exactly ``[P]`` throughout, so the expected average
degree target (Equation 2) holds at every step.

Faithfulness notes:

* The paper accepts a swap when ``d₁ + d₂ < 0`` with ``d₁``/``d₂`` computed
  independently (lines 10-11).  When ``e₁`` and ``e₂`` share an endpoint the
  independent sum double-counts that node; we evaluate the *exact* joint
  change (:meth:`DegreeTracker.swap_change`), which is identical whenever
  the edges are disjoint — the overwhelmingly common case — and guarantees
  the invariant that an accepted swap never increases ``Δ``.
* ``steps`` defaults to ``[10·P]``, the setting the paper selects from its
  Figure 4 sweep; the ``steps_factor`` knob reproduces that sweep.
* For large graphs, exact Brandes betweenness is the bottleneck; pass
  ``num_betweenness_sources`` to switch Phase 1 to the sampled estimator
  (the resource-constrained operating mode).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.base import EdgeShedder, timed_phase
from repro.core.discrepancy import (
    ArrayDegreeTracker,
    DegreeTracker,
    round_half_up,
    weighted_swap_change_from_dis,
)
from repro.graph.centrality import top_edge_ids_by_betweenness, top_edges_by_betweenness
from repro.graph.graph import Edge, Graph
from repro.rng import RandomState, ensure_rng

__all__ = ["CRRShedder", "IndexedEdgePool", "ImportanceFn", "crr_reduce_ids"]

#: Custom Phase-1 ranking signal: maps a graph to per-edge scores.
ImportanceFn = Callable[[Graph], Mapping[Edge, float]]

#: A swap must improve Δ by more than this to be accepted; filters float
#: noise that would otherwise let mathematically-zero-change swaps through.
_MIN_IMPROVEMENT = 1e-9

#: Swap-candidate index pairs are pre-drawn from the RNG this many steps at
#: a time (bounds memory for huge ``steps`` without changing the stream).
_DRAW_BLOCK = 65536

#: Adaptive evaluation chunk bounds for the array rewiring loop: chunks
#: double after an all-reject chunk and halve after an acceptance, so the
#: loop spends large vectorized batches where acceptances are rare and
#: small ones where every acceptance invalidates the tail of the batch.
_MIN_CHUNK = 64
_MAX_CHUNK = 4096


class IndexedEdgePool:
    """An edge set supporting O(1) random sampling, insertion and removal.

    CRR's rewiring loop samples uniformly from both the kept and the shed
    edge pools on every iteration; a list with swap-pop removal plus a
    position index gives all three operations in constant time.
    """

    def __init__(self, edges: Iterable[Edge] = ()) -> None:
        self._items: List[Edge] = []
        self._position: Dict[Edge, int] = {}
        for edge in edges:
            self.add(edge)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._position

    def add(self, edge: Edge) -> None:
        if edge in self._position:
            raise ValueError(f"edge {edge!r} already in pool")
        self._position[edge] = len(self._items)
        self._items.append(edge)

    def remove(self, edge: Edge) -> None:
        index = self._position.pop(edge)  # KeyError for unknown edges
        last = self._items.pop()
        if index < len(self._items):
            self._items[index] = last
            self._position[last] = index

    def sample(self, rng: np.random.Generator) -> Edge:
        if not self._items:
            raise IndexError("cannot sample from an empty pool")
        return self._items[int(rng.integers(len(self._items)))]

    def items(self) -> List[Edge]:
        return list(self._items)


class CRRShedder(EdgeShedder):
    """Algorithm 1: betweenness-ranked selection + Δ-reducing rewiring.

    Args:
        steps: explicit number of rewiring iterations.  ``None`` (default)
            uses the paper's recommendation ``[steps_factor · P]``.
        steps_factor: the ``x`` in ``steps = [x·P]`` (paper: 10).
        num_betweenness_sources: if set, estimate edge betweenness from this
            many sampled sources instead of exactly (for large graphs).
        skip_ranking: ablation switch — replace Phase 1's betweenness ranking
            with a random initial edge set (isolates what the ranking buys).
            Shorthand for ``importance="random"``.
        importance: Phase 1's edge-importance signal — ``"betweenness"``
            (the paper's choice, default), ``"random"``, or a callable
            ``Graph -> {edge: score}`` for custom criteria (edges are then
            ranked by score, ties broken randomly).
        engine: ``"array"`` (default) runs the rewiring loop over flat
            CSR-id arrays with block-drawn swap candidates and batched
            Δ-change evaluation; ``"legacy"`` is the original scalar loop
            over :class:`DegreeTracker`, kept as the exactness oracle.
            Both engines consume the RNG identically and accept the exact
            same swap sequence, so the reduced graph is the same either way.
        seed: randomness for tie-breaking, swap sampling, and the sampled
            betweenness estimator.
    """

    name = "CRR"

    def __init__(
        self,
        steps: Optional[int] = None,
        steps_factor: float = 10.0,
        num_betweenness_sources: Optional[int] = None,
        skip_ranking: bool = False,
        importance: "str | ImportanceFn" = "betweenness",
        engine: str = "array",
        seed: RandomState = None,
    ) -> None:
        if steps is not None and steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        if steps_factor < 0:
            raise ValueError(f"steps_factor must be non-negative, got {steps_factor}")
        if skip_ranking:
            importance = "random"
        if isinstance(importance, str) and importance not in ("betweenness", "random"):
            raise ValueError(
                f"importance must be 'betweenness', 'random', or a callable,"
                f" got {importance!r}"
            )
        if engine not in ("array", "legacy"):
            raise ValueError(f"engine must be 'array' or 'legacy', got {engine!r}")
        self.steps = steps
        self.steps_factor = steps_factor
        self.num_betweenness_sources = num_betweenness_sources
        self.importance = importance
        self.engine = engine
        self._seed = seed

    @property
    def skip_ranking(self) -> bool:
        """Back-compat view: True when Phase 1 ranks randomly."""
        return self.importance == "random"

    def _reduce(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        rng = ensure_rng(self._seed)
        target = round_half_up(p * graph.num_edges)
        steps = self.steps
        if steps is None:
            steps = round_half_up(self.steps_factor * p * graph.num_edges)

        stats: Dict[str, Any] = {
            "target_edges": target,
            "steps": steps,
            "initial_ranking": (
                self.importance if isinstance(self.importance, str) else "custom"
            ),
            "engine": self.engine,
        }
        with timed_phase(stats, "ranking_seconds"):
            kept_edges = self._initial_edges(graph, target, rng)
        rewire = self._rewire_array if self.engine == "array" else self._rewire_legacy
        with timed_phase(stats, "rewiring_seconds"):
            reduced = rewire(graph, p, kept_edges, steps, rng, stats)
        return reduced, stats

    def _rewire_legacy(
        self,
        graph: Graph,
        p: float,
        kept_edges: List[Edge],
        steps: int,
        rng: np.random.Generator,
        stats: Dict[str, Any],
    ) -> Graph:
        """The original scalar rewiring loop (the array engine's oracle)."""
        tracker = DegreeTracker(graph, p)
        for u, v in kept_edges:
            tracker.add_edge(u, v)

        kept = IndexedEdgePool(kept_edges)
        kept_set = set(kept_edges)
        shed = IndexedEdgePool(e for e in graph.edges() if e not in kept_set)

        accepted = 0
        attempted = 0
        if len(kept) and len(shed):
            for _ in range(steps):
                edge_out = kept.sample(rng)
                edge_in = shed.sample(rng)
                attempted += 1
                if tracker.swap_change(edge_out, edge_in) < -_MIN_IMPROVEMENT:
                    tracker.apply_swap(edge_out, edge_in)
                    kept.remove(edge_out)
                    shed.add(edge_out)
                    shed.remove(edge_in)
                    kept.add(edge_in)
                    accepted += 1

        stats["attempted_swaps"] = attempted
        stats["accepted_swaps"] = accepted
        stats["tracker_delta"] = tracker.delta
        return graph.edge_subgraph(kept.items())

    def _rewire_array(
        self,
        graph: Graph,
        p: float,
        kept_edges: List[Edge],
        steps: int,
        rng: np.random.Generator,
        stats: Dict[str, Any],
    ) -> Graph:
        """CSR-native rewiring: array pools, blocked draws, batched evals.

        The kept/shed pools are flat endpoint-id arrays mirroring
        :class:`IndexedEdgePool`'s swap-pop layout, so sampled positions
        refer to the same edges as in the legacy loop; swap candidates are
        pre-drawn in blocks with one broadcast ``rng.integers`` call per
        block, which produces the exact bit stream of the legacy loop's
        alternating scalar draws; Δ-changes are evaluated in adaptive
        vectorized chunks and every acceptance re-evaluates from the next
        step, so each accept/reject decision is made from the same tracker
        state the scalar loop would see.  The accepted swap sequence — and
        hence the reduced graph — is identical to ``engine="legacy"``.
        """
        csr = graph.csr()
        index_of = csr.index_of

        count = len(kept_edges)
        kept_u = np.fromiter((index_of[u] for u, _ in kept_edges), np.int64, count=count)
        kept_v = np.fromiter((index_of[v] for _, v in kept_edges), np.int64, count=count)
        kept_u, kept_v = crr_rewire_ids(csr, p, kept_u, kept_v, steps, rng, stats)
        return csr.subgraph_from_edge_ids(kept_u, kept_v)

    @staticmethod
    def _run_swaps(
        tracker: ArrayDegreeTracker,
        rng: np.random.Generator,
        kept_u: np.ndarray,
        kept_v: np.ndarray,
        shed_u: np.ndarray,
        shed_v: np.ndarray,
        steps: int,
    ) -> int:
        """Run ``steps`` swap attempts over the array pools; return accepts."""
        pool_sizes = np.tile(
            np.array([kept_u.shape[0], shed_u.shape[0]], dtype=np.int64), _DRAW_BLOCK
        )
        last = kept_u.shape[0] - 1
        accepted = 0
        done = 0
        chunk = _MIN_CHUNK
        weighted = tracker.weighted
        if weighted:
            # Pool weights are static per edge: resolve them once and mirror
            # the swap-pop bookkeeping below, instead of a searchsorted
            # lookup per candidate chunk.  The stored doubles are the same
            # ones ``swap_change_ids`` would fetch, so scores are identical.
            kept_w = tracker.edge_weights_ids(kept_u, kept_v)
            shed_w = tracker.edge_weights_ids(shed_u, shed_v)
            dis = tracker.dis_array()  # live view; apply_swap_ids updates it
        while done < steps:
            block = min(_DRAW_BLOCK, steps - done)
            # One broadcast call = the legacy loop's 2·block alternating
            # integers(P)/integers(S) draws, bit for bit.
            draws = rng.integers(0, pool_sizes[: 2 * block])
            kept_idx = draws[0::2]
            shed_idx = draws[1::2]
            pos = 0
            while pos < block:
                end = min(pos + chunk, block)
                out_u = kept_u[kept_idx[pos:end]]
                out_v = kept_v[kept_idx[pos:end]]
                in_u = shed_u[shed_idx[pos:end]]
                in_v = shed_v[shed_idx[pos:end]]
                if weighted:
                    change = weighted_swap_change_from_dis(
                        dis, out_u, out_v, in_u, in_v,
                        kept_w[kept_idx[pos:end]],
                        shed_w[shed_idx[pos:end]],
                    )
                else:
                    change = tracker.swap_change_ids(out_u, out_v, in_u, in_v)
                accept = change < -_MIN_IMPROVEMENT
                if not accept.any():
                    # Every decision in the chunk was made from live state.
                    pos = end
                    chunk = min(chunk * 2, _MAX_CHUNK)
                    continue
                # Decisions are only valid up to the first acceptance: apply
                # it, then re-evaluate the tail from the mutated state.
                hit = int(np.argmax(accept))
                ou, ov = int(out_u[hit]), int(out_v[hit])
                iu, iv = int(in_u[hit]), int(in_v[hit])
                tracker.apply_swap_ids(ou, ov, iu, iv)
                i = int(kept_idx[pos + hit])
                j = int(shed_idx[pos + hit])
                # Mirror IndexedEdgePool's swap-pop bookkeeping: the kept
                # pool's last edge backfills slot i, the incoming edge takes
                # the last slot, and the outgoing edge lands in shed slot j.
                kept_u[i] = kept_u[last]
                kept_v[i] = kept_v[last]
                kept_u[last] = iu
                kept_v[last] = iv
                shed_u[j] = ou
                shed_v[j] = ov
                if weighted:
                    w_out_edge = float(kept_w[i])
                    kept_w[i] = kept_w[last]
                    kept_w[last] = shed_w[j]
                    shed_w[j] = w_out_edge
                accepted += 1
                pos += hit + 1
                chunk = max(_MIN_CHUNK, chunk // 2)
            done += block
        return accepted

    def _initial_edges(self, graph: Graph, target: int, rng: np.random.Generator) -> List[Edge]:
        """Phase 1: the [P]-edge initial selection."""
        target = min(target, graph.num_edges)
        if self.importance == "random":
            edges = list(graph.edges())
            picks = rng.choice(len(edges), size=target, replace=False)
            return [edges[i] for i in picks]
        if self.importance == "betweenness":
            return top_edges_by_betweenness(
                graph,
                target,
                num_sources=self.num_betweenness_sources,
                seed=rng,
                tie_seed=rng,
            )
        # Custom importance: rank by the caller's scores, random ties.
        scores = dict(self.importance(graph))
        missing = [edge for edge in graph.edges() if edge not in scores]
        if missing:
            raise ValueError(
                f"importance callable left {len(missing)} edges unscored"
                f" (e.g. {missing[0]!r}); score every canonical edge"
            )
        edges = list(scores)
        rng.shuffle(edges)
        edges.sort(key=lambda edge: scores[edge], reverse=True)
        return edges[:target]


# ----------------------------------------------------------------------
# Id-native CRR core — shared by the whole-graph array engine and the
# per-shard runner (repro.shard), which feeds it CSR *views*.
# ----------------------------------------------------------------------


def crr_initial_ids(
    csr: "CSRAdjacency",
    target: int,
    importance: str,
    num_sources: Optional[int],
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Phase 1 over a CSR snapshot: the [P]-edge initial selection in id space.

    Consumes the RNG exactly as :meth:`CRRShedder._initial_edges` does for
    the same ``importance`` setting (``rng.choice`` over the same edge
    count / identical shuffle-and-sort inside the id-space top-k), so a
    whole-graph call selects the same edges the label path selects.
    """
    target = min(target, csr.num_edges)
    if importance == "random":
        edge_u, edge_v = csr.edge_list_ids()
        picks = rng.choice(edge_u.shape[0], size=target, replace=False)
        return edge_u[picks], edge_v[picks]
    return top_edge_ids_by_betweenness(
        csr, target, num_sources=num_sources, seed=rng, tie_seed=rng
    )


def crr_rewire_ids(
    csr: "CSRAdjacency",
    p: float,
    kept_u: np.ndarray,
    kept_v: np.ndarray,
    steps: int,
    rng: np.random.Generator,
    stats: Dict[str, Any],
    weighted: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Phase 2 over a CSR snapshot: the array rewiring loop in id space.

    ``kept_u``/``kept_v`` are mutated in place (swap-pop pool layout) and
    returned.  The tracker scores discrepancy against the snapshot's own
    degrees, so feeding a :class:`repro.graph.csr.CSRView` rewires a shard
    against its interior-degree expectations.

    ``weighted=True`` swaps against *expected-degree mass* instead of edge
    counts (the uncertain-graph objective, :mod:`repro.uncertain`).  The
    loop structure, RNG consumption and pool bookkeeping are untouched —
    only the tracker's Δ-change arithmetic changes — so with all weights
    exactly 1.0 the accepted swap sequence is bit-identical to the
    unweighted run.
    """
    n = csr.num_nodes
    tracker = ArrayDegreeTracker.from_csr(csr, p, weighted=weighted)
    tracker.add_edges_ids(kept_u, kept_v)

    # Shed pool = edge-scan order minus the kept set (same positions the
    # legacy IndexedEdgePool assigns).  Canonical orientation puts the
    # smaller id first on both sides, so the keys line up.
    edge_u, edge_v = csr.edge_list_ids()
    shed_mask = ~np.isin(edge_u * n + edge_v, kept_u * n + kept_v)
    shed_u = edge_u[shed_mask]
    shed_v = edge_v[shed_mask]

    accepted = 0
    attempted = 0
    if kept_u.shape[0] and shed_u.shape[0]:
        attempted = steps
        accepted = CRRShedder._run_swaps(tracker, rng, kept_u, kept_v, shed_u, shed_v, steps)

    stats["attempted_swaps"] = attempted
    stats["accepted_swaps"] = accepted
    stats["tracker_delta"] = tracker.delta
    return kept_u, kept_v


def crr_reduce_ids(
    csr: "CSRAdjacency",
    p: float,
    rng: np.random.Generator,
    stats: Dict[str, Any],
    steps: Optional[int] = None,
    steps_factor: float = 10.0,
    importance: str = "betweenness",
    num_sources: Optional[int] = None,
    weighted: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Full CRR (rank + rewire) over a CSR snapshot, returning kept edge ids.

    The id-space counterpart of :meth:`CRRShedder._reduce` for the array
    engine: identical target/steps arithmetic, identical RNG consumption.
    The per-shard runner calls this on each :class:`CSRView`; calling it on
    a whole-graph snapshot reproduces ``CRRShedder(engine="array")``'s kept
    edge arrays bit for bit.

    ``weighted=True`` rewires against expected-degree mass (see
    :func:`crr_rewire_ids`); Phase 1's betweenness ranking stays purely
    topological either way — probabilities shape the objective, not the
    centrality signal.
    """
    target = round_half_up(p * csr.num_edges)
    if steps is None:
        steps = round_half_up(steps_factor * p * csr.num_edges)
    stats["target_edges"] = target
    stats["steps"] = steps
    with timed_phase(stats, "ranking_seconds"):
        kept_u, kept_v = crr_initial_ids(csr, target, importance, num_sources, rng)
    with timed_phase(stats, "rewiring_seconds"):
        kept_u, kept_v = crr_rewire_ids(
            csr, p, kept_u, kept_v, steps, rng, stats, weighted=weighted
        )
    return kept_u, kept_v
