"""CRR — Centrality Ranking with Rewiring (Algorithm 1).

Phase 1 keeps the ``[P] = [p·|E|]`` edges of highest *edge betweenness
centrality* (ties broken randomly, as the paper specifies), preserving the
bridges that hold the topology together.  Phase 2 runs ``steps`` random
swap attempts: pick ``e₁`` from the kept set and ``e₂`` from the shed set,
and exchange them iff doing so lowers the total degree discrepancy ``Δ``.
The edge count stays exactly ``[P]`` throughout, so the expected average
degree target (Equation 2) holds at every step.

Faithfulness notes:

* The paper accepts a swap when ``d₁ + d₂ < 0`` with ``d₁``/``d₂`` computed
  independently (lines 10-11).  When ``e₁`` and ``e₂`` share an endpoint the
  independent sum double-counts that node; we evaluate the *exact* joint
  change (:meth:`DegreeTracker.swap_change`), which is identical whenever
  the edges are disjoint — the overwhelmingly common case — and guarantees
  the invariant that an accepted swap never increases ``Δ``.
* ``steps`` defaults to ``[10·P]``, the setting the paper selects from its
  Figure 4 sweep; the ``steps_factor`` knob reproduces that sweep.
* For large graphs, exact Brandes betweenness is the bottleneck; pass
  ``num_betweenness_sources`` to switch Phase 1 to the sampled estimator
  (the resource-constrained operating mode).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.base import EdgeShedder
from repro.core.discrepancy import DegreeTracker, round_half_up
from repro.graph.centrality import top_edges_by_betweenness
from repro.graph.graph import Edge, Graph
from repro.rng import RandomState, ensure_rng

__all__ = ["CRRShedder", "IndexedEdgePool", "ImportanceFn"]

#: Custom Phase-1 ranking signal: maps a graph to per-edge scores.
ImportanceFn = Callable[[Graph], Mapping[Edge, float]]

#: A swap must improve Δ by more than this to be accepted; filters float
#: noise that would otherwise let mathematically-zero-change swaps through.
_MIN_IMPROVEMENT = 1e-9


class IndexedEdgePool:
    """An edge set supporting O(1) random sampling, insertion and removal.

    CRR's rewiring loop samples uniformly from both the kept and the shed
    edge pools on every iteration; a list with swap-pop removal plus a
    position index gives all three operations in constant time.
    """

    def __init__(self, edges: List[Edge] = ()) -> None:
        self._items: List[Edge] = []
        self._position: Dict[Edge, int] = {}
        for edge in edges:
            self.add(edge)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._position

    def add(self, edge: Edge) -> None:
        if edge in self._position:
            raise ValueError(f"edge {edge!r} already in pool")
        self._position[edge] = len(self._items)
        self._items.append(edge)

    def remove(self, edge: Edge) -> None:
        index = self._position.pop(edge)  # KeyError for unknown edges
        last = self._items.pop()
        if index < len(self._items):
            self._items[index] = last
            self._position[last] = index

    def sample(self, rng: np.random.Generator) -> Edge:
        if not self._items:
            raise IndexError("cannot sample from an empty pool")
        return self._items[int(rng.integers(len(self._items)))]

    def items(self) -> List[Edge]:
        return list(self._items)


class CRRShedder(EdgeShedder):
    """Algorithm 1: betweenness-ranked selection + Δ-reducing rewiring.

    Args:
        steps: explicit number of rewiring iterations.  ``None`` (default)
            uses the paper's recommendation ``[steps_factor · P]``.
        steps_factor: the ``x`` in ``steps = [x·P]`` (paper: 10).
        num_betweenness_sources: if set, estimate edge betweenness from this
            many sampled sources instead of exactly (for large graphs).
        skip_ranking: ablation switch — replace Phase 1's betweenness ranking
            with a random initial edge set (isolates what the ranking buys).
            Shorthand for ``importance="random"``.
        importance: Phase 1's edge-importance signal — ``"betweenness"``
            (the paper's choice, default), ``"random"``, or a callable
            ``Graph -> {edge: score}`` for custom criteria (edges are then
            ranked by score, ties broken randomly).
        seed: randomness for tie-breaking, swap sampling, and the sampled
            betweenness estimator.
    """

    name = "CRR"

    def __init__(
        self,
        steps: Optional[int] = None,
        steps_factor: float = 10.0,
        num_betweenness_sources: Optional[int] = None,
        skip_ranking: bool = False,
        importance: "str | ImportanceFn" = "betweenness",
        seed: RandomState = None,
    ) -> None:
        if steps is not None and steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        if steps_factor < 0:
            raise ValueError(f"steps_factor must be non-negative, got {steps_factor}")
        if skip_ranking:
            importance = "random"
        if isinstance(importance, str) and importance not in ("betweenness", "random"):
            raise ValueError(
                f"importance must be 'betweenness', 'random', or a callable,"
                f" got {importance!r}"
            )
        self.steps = steps
        self.steps_factor = steps_factor
        self.num_betweenness_sources = num_betweenness_sources
        self.importance = importance
        self._seed = seed

    @property
    def skip_ranking(self) -> bool:
        """Back-compat view: True when Phase 1 ranks randomly."""
        return self.importance == "random"

    def _reduce(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        rng = ensure_rng(self._seed)
        target = round_half_up(p * graph.num_edges)
        steps = self.steps
        if steps is None:
            steps = round_half_up(self.steps_factor * p * graph.num_edges)

        kept_edges = self._initial_edges(graph, target, rng)
        tracker = DegreeTracker(graph, p)
        for u, v in kept_edges:
            tracker.add_edge(u, v)

        kept = IndexedEdgePool(kept_edges)
        kept_set = set(kept_edges)
        shed = IndexedEdgePool([e for e in graph.edges() if e not in kept_set])

        accepted = 0
        attempted = 0
        if len(kept) and len(shed):
            for _ in range(steps):
                edge_out = kept.sample(rng)
                edge_in = shed.sample(rng)
                attempted += 1
                if tracker.swap_change(edge_out, edge_in) < -_MIN_IMPROVEMENT:
                    tracker.apply_swap(edge_out, edge_in)
                    kept.remove(edge_out)
                    shed.add(edge_out)
                    shed.remove(edge_in)
                    kept.add(edge_in)
                    accepted += 1

        reduced = graph.edge_subgraph(kept.items())
        stats = {
            "target_edges": target,
            "steps": steps,
            "attempted_swaps": attempted,
            "accepted_swaps": accepted,
            "initial_ranking": (
                self.importance if isinstance(self.importance, str) else "custom"
            ),
            "tracker_delta": tracker.delta,
        }
        return reduced, stats

    def _initial_edges(self, graph: Graph, target: int, rng: np.random.Generator) -> List[Edge]:
        """Phase 1: the [P]-edge initial selection."""
        target = min(target, graph.num_edges)
        if self.importance == "random":
            edges = list(graph.edges())
            picks = rng.choice(len(edges), size=target, replace=False)
            return [edges[i] for i in picks]
        if self.importance == "betweenness":
            return top_edges_by_betweenness(
                graph,
                target,
                num_sources=self.num_betweenness_sources,
                seed=rng,
                tie_seed=rng,
            )
        # Custom importance: rank by the caller's scores, random ties.
        scores = dict(self.importance(graph))
        missing = [edge for edge in graph.edges() if edge not in scores]
        if missing:
            raise ValueError(
                f"importance callable left {len(missing)} edges unscored"
                f" (e.g. {missing[0]!r}); score every canonical edge"
            )
        edges = list(scores)
        rng.shuffle(edges)
        edges.sort(key=lambda edge: scores[edge], reverse=True)
        return edges[:target]
