"""Theoretical error bounds (Theorems 1 and 2).

Both theorems bound the *average* absolute degree discrepancy
``Δ / |V|`` of the reduced graph:

* **Theorem 1 (CRR)**: the average is in ``(0, 4p(1−p)·|E|/|V|)``.
* **Theorem 2 (BM2)**: the average is in ``(0, 1/2 + (1−p)·|E|/|V|)``.

Figure 5(a)-(b) plots the measured average Δ against these curves; the
bench for that figure, and a hypothesis property test, assert that every
run of the algorithms respects its bound.
"""

from __future__ import annotations

from repro.core.base import validate_ratio
from repro.graph.graph import Graph

__all__ = [
    "crr_average_delta_bound",
    "bm2_average_delta_bound",
    "crr_bound_for_graph",
    "bm2_bound_for_graph",
]


def crr_average_delta_bound(p: float, num_edges: int, num_nodes: int) -> float:
    """Theorem 1 upper bound: ``4·p·(1−p)·|E| / |V|``."""
    p = validate_ratio(p)
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if num_edges < 0:
        raise ValueError(f"num_edges must be non-negative, got {num_edges}")
    return 4.0 * p * (1.0 - p) * num_edges / num_nodes


def bm2_average_delta_bound(p: float, num_edges: int, num_nodes: int) -> float:
    """Theorem 2 upper bound: ``1/2 + (1−p)·|E| / |V|``."""
    p = validate_ratio(p)
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be positive, got {num_nodes}")
    if num_edges < 0:
        raise ValueError(f"num_edges must be non-negative, got {num_edges}")
    return 0.5 + (1.0 - p) * num_edges / num_nodes


def crr_bound_for_graph(graph: Graph, p: float) -> float:
    """Theorem 1 bound evaluated on a concrete graph."""
    return crr_average_delta_bound(p, graph.num_edges, graph.num_nodes)


def bm2_bound_for_graph(graph: Graph, p: float) -> float:
    """Theorem 2 bound evaluated on a concrete graph."""
    return bm2_average_delta_bound(p, graph.num_edges, graph.num_nodes)
