"""Local sparsification shedders from the simplification literature.

Two representatives of the *local* edge-sparsification family (cf. Hamann
et al., "Structure-preserving sparsification methods for social
networks"), included as additional baselines:

* :class:`LocalDegreeShedder` — every node nominates its ``⌈p·deg(u)⌉``
  highest-degree neighbours; an edge is kept iff either endpoint
  nominates it.  Hub-favouring, preserves the backbone ("local degree"
  method).
* :class:`JaccardShedder` — rank edges globally by the Jaccard similarity
  of their endpoints' neighbourhoods and keep the top ``[p·|E|]``.
  Triangle-favouring, preserves communities at the cost of bridges.

Neither targets the paper's Δ objective, which is exactly why they make
instructive comparisons: the benchmarks show both pay a large Δ premium
against CRR/BM2.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Tuple

from repro.core.base import EdgeShedder
from repro.core.discrepancy import round_half_up
from repro.graph.graph import Graph
from repro.rng import RandomState, ensure_rng

__all__ = ["LocalDegreeShedder", "JaccardShedder"]


class LocalDegreeShedder(EdgeShedder):
    """Keep edges nominated by either endpoint's top-``⌈p·deg⌉`` list.

    Note this method controls the *per-node* retention, not the global
    edge count: the kept set can exceed ``p·|E|`` because one nomination
    suffices.  ``achieved_ratio`` on the result reports the actual size.
    """

    name = "LocalDegree"

    def __init__(self, seed: RandomState = None) -> None:
        self._seed = seed

    def _reduce(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        rng = ensure_rng(self._seed)
        kept = set()
        for node in graph.nodes():
            degree = graph.degree(node)
            if degree == 0:
                continue
            quota = math.ceil(p * degree)
            neighbors = list(graph.neighbors(node))
            rng.shuffle(neighbors)  # random ties among equal-degree neighbours
            neighbors.sort(key=graph.degree, reverse=True)
            for neighbor in neighbors[:quota]:
                kept.add(graph.canonical_edge(node, neighbor))
        reduced = graph.edge_subgraph(kept)
        return reduced, {"kept_edges": len(kept)}


class JaccardShedder(EdgeShedder):
    """Keep the ``[p·|E|]`` edges of highest endpoint Jaccard similarity."""

    name = "Jaccard"

    def __init__(self, seed: RandomState = None) -> None:
        self._seed = seed

    def _reduce(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        rng = ensure_rng(self._seed)
        target = min(round_half_up(p * graph.num_edges), graph.num_edges)
        neighbor_sets = {node: set(graph.neighbors(node)) for node in graph.nodes()}

        def jaccard(u, v) -> float:
            a, b = neighbor_sets[u], neighbor_sets[v]
            union = len(a | b) - 2  # exclude u and v themselves
            if union <= 0:
                return 0.0
            return len(a & b) / union

        scores = {edge: jaccard(*edge) for edge in graph.edges()}
        edges = list(scores)
        rng.shuffle(edges)
        edges.sort(key=lambda edge: scores[edge], reverse=True)
        kept = edges[:target]
        reduced = graph.edge_subgraph(kept)
        stats = {
            "target_edges": target,
            "min_kept_similarity": min((scores[e] for e in kept), default=0.0),
        }
        return reduced, stats
