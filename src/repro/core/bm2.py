"""BM2 — B-Matching with Bipartite Matching (Algorithms 2 and 3).

Phase 1 rounds each node's expected degree ``p·deg_G(u)`` to an integer
capacity ``b(u)`` and runs the linear-time greedy maximal b-matching — every
kept edge fits inside both endpoints' capacities, so no node overshoots its
expectation by more than the rounding itself.

Phase 2 repairs the rounding slack.  Nodes are grouped by their discrepancy
``dis(u)`` after Phase 1:

* group A (``dis ≤ −0.5``): adding an incident edge *reduces* ``|dis|``;
* group B (``−0.5 < dis < 0``): adding an edge increases ``|dis|`` by < 1;
* group C (``dis ≥ 0``): adding an edge costs a full +1.

Only A–B edges can pay for themselves: Lemma 1 gives their gain
``|dis(u)| + 2|dis(v)| − |dis(u)+1| − 1``.  Algorithm 3 (``bipartite``)
greedily consumes the positive-gain A–B edges from a max-priority queue,
re-weighting an A node's remaining edges as its deficit shrinks (gains are
monotone non-increasing, and constant while ``dis(a) ≤ −1`` — Lemma 2), and
retiring nodes that leave their group.  The final edge set is
``E' = E_m ∪ E_BP``.

Zero-gain edges: Algorithm 2 admits them (``gain ≥ 0``) but the paper's
Example 2 notes a zero-gain head "can be selected or discarded according to
user's preference" — the ``accept_zero_gain`` flag (default ``False``,
matching the example's outcome) decides.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Dict, List, Tuple

from repro.core.base import EdgeShedder
from repro.core.discrepancy import DegreeTracker, round_half_up
from repro.errors import ReductionError
from repro.graph.graph import Edge, Graph, Node
from repro.graph.matching import greedy_b_matching
from repro.rng import RandomState, ensure_rng

__all__ = ["BM2Shedder", "bipartite_repair"]

#: Tolerance for float noise in gain/discrepancy comparisons.  Expected
#: degrees are products like ``0.4 * 2`` that are inexact in binary, so a
#: mathematically-zero gain can come out as ~1e-16; snapping keeps the
#: zero-gain policy and the A/B/C classification faithful to the paper.
_EPSILON = 1e-9


def _snap(value: float) -> float:
    """Round values within ``_EPSILON`` of an integer or half-integer."""
    doubled = value * 2.0
    nearest = round(doubled)
    if abs(doubled - nearest) < 2.0 * _EPSILON:
        return nearest / 2.0
    return value

#: Supported capacity rounding rules (Phase 1 ablation).
_ROUNDING_RULES = {
    "half_up": round_half_up,
    "half_even": lambda x: int(round(x)),
    "floor": lambda x: int(x),
    "ceil": lambda x: -int(-x // 1),
}


def bipartite_repair(
    tracker: DegreeTracker,
    candidate_edges: List[Tuple[Node, Node]],
    accept_zero_gain: bool = False,
) -> List[Edge]:
    """Algorithm 3: greedy weighted semi-matching between groups A and B.

    ``candidate_edges`` must be oriented ``(a, b)`` with ``a`` in group A and
    ``b`` in group B under ``tracker``'s current state.  The tracker is
    mutated: every selected edge is added to it.  Returns the selected edges.

    Implementation: a lazy max-heap.  Each entry carries the weight it was
    pushed with; stale entries (whose edge was re-weighted or retired) are
    skipped on pop.  Gains only ever decrease as A-deficits shrink, so lazy
    deletion is safe.
    """
    weight: Dict[Tuple[Node, Node], float] = {}
    edges_by_a: Dict[Node, List[Node]] = {}
    alive_b: set = set()

    for a, b in candidate_edges:
        gain = _snap(
            abs(tracker.dis(a))
            + 2 * abs(tracker.dis(b))
            - abs(tracker.dis(a) + 1)
            - 1
        )
        if gain < 0:
            continue
        key = (a, b)
        if key in weight:
            raise ReductionError(f"duplicate candidate edge {key!r}")
        weight[key] = gain
        edges_by_a.setdefault(a, []).append(b)
        alive_b.add(b)

    heap: List[Tuple[float, int, Node, Node]] = []
    counter = 0
    for (a, b), w in weight.items():
        heap.append((-w, counter, a, b))
        counter += 1
    heapq.heapify(heap)

    selected: List[Edge] = []
    while heap:
        negative_w, _, a, b = heapq.heappop(heap)
        w = -negative_w
        key = (a, b)
        current = weight.get(key)
        if current is None or b not in alive_b or current != w:
            continue  # stale or retired entry
        if w == 0 and not accept_zero_gain:
            del weight[key]
            continue

        selected.append(key)
        del weight[key]
        tracker.add_edge(a, b)
        # b's discrepancy is now >= 0: it left group B (line 6).
        alive_b.discard(b)

        dis_a = _snap(tracker.dis(a))
        if dis_a <= -1:
            # Lemma 2 zone: gains of a's remaining edges are unchanged.
            continue
        if dis_a > -0.5:
            # a left group A (lines 15-17): retire all its edges.
            for x in edges_by_a.get(a, ()):
                weight.pop((a, x), None)
            continue
        # -1 < dis(a) <= -0.5: re-weight a's surviving edges (lines 8-14).
        for x in edges_by_a.get(a, ()):
            edge = (a, x)
            if edge not in weight or x not in alive_b:
                continue
            new_w = _snap(abs(dis_a) + 2 * abs(tracker.dis(x)) - abs(1 + dis_a) - 1)
            if new_w > 0 or (new_w == 0 and accept_zero_gain):
                weight[edge] = new_w
                heapq.heappush(heap, (-new_w, counter, a, x))
                counter += 1
            else:
                del weight[edge]
    return selected


class BM2Shedder(EdgeShedder):
    """Algorithm 2: rounded b-matching plus bipartite deficit repair.

    Args:
        rounding: capacity rounding rule — ``"half_up"`` (paper's nearest
            integer, the default), ``"half_even"``, ``"floor"``, ``"ceil"``.
        accept_zero_gain: whether Algorithm 3 keeps zero-gain edges.
        shuffle_edges: scan Phase 1's edges in a random order instead of the
            input order (ablation; the paper scans input order).
        seed: randomness for ``shuffle_edges``.
    """

    name = "BM2"

    def __init__(
        self,
        rounding: str = "half_up",
        accept_zero_gain: bool = False,
        shuffle_edges: bool = False,
        seed: RandomState = None,
    ) -> None:
        if rounding not in _ROUNDING_RULES:
            raise ValueError(
                f"rounding must be one of {sorted(_ROUNDING_RULES)}, got {rounding!r}"
            )
        self.rounding = rounding
        self.accept_zero_gain = accept_zero_gain
        self.shuffle_edges = shuffle_edges
        self._seed = seed

    def _reduce(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        round_rule = _ROUNDING_RULES[self.rounding]
        capacities = {node: round_rule(p * graph.degree(node)) for node in graph.nodes()}

        phase1_start = time.perf_counter()
        shuffle_seed = ensure_rng(self._seed) if self.shuffle_edges else None
        matched = greedy_b_matching(graph, capacities, shuffle_seed=shuffle_seed)
        phase1_elapsed = time.perf_counter() - phase1_start

        phase2_start = time.perf_counter()
        tracker = DegreeTracker(graph, p)
        for u, v in matched:
            tracker.add_edge(u, v)

        group_a = {node for node in graph.nodes() if _snap(tracker.dis(node)) <= -0.5}
        group_b = {
            node for node in graph.nodes() if -0.5 < _snap(tracker.dis(node)) < 0
        }

        matched_keys = {frozenset(edge) for edge in matched}
        candidates: List[Tuple[Node, Node]] = []
        for u, v in graph.edges():
            if frozenset((u, v)) in matched_keys:
                continue
            if u in group_a and v in group_b:
                candidates.append((u, v))
            elif v in group_a and u in group_b:
                candidates.append((v, u))

        repaired = bipartite_repair(
            tracker, candidates, accept_zero_gain=self.accept_zero_gain
        )
        phase2_elapsed = time.perf_counter() - phase2_start

        reduced = graph.edge_subgraph(list(matched) + [tuple(e) for e in repaired])
        stats = {
            "capacity_rounding": self.rounding,
            "matched_edges": len(matched),
            "repair_edges": len(repaired),
            "group_a_size": len(group_a),
            "group_b_size": len(group_b),
            "candidate_edges": len(candidates),
            "phase1_seconds": phase1_elapsed,
            "phase2_seconds": phase2_elapsed,
            "tracker_delta": tracker.delta,
        }
        return reduced, stats
