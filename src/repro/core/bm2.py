"""BM2 — B-Matching with Bipartite Matching (Algorithms 2 and 3).

Phase 1 rounds each node's expected degree ``p·deg_G(u)`` to an integer
capacity ``b(u)`` and runs the linear-time greedy maximal b-matching — every
kept edge fits inside both endpoints' capacities, so no node overshoots its
expectation by more than the rounding itself.

Phase 2 repairs the rounding slack.  Nodes are grouped by their discrepancy
``dis(u)`` after Phase 1:

* group A (``dis ≤ −0.5``): adding an incident edge *reduces* ``|dis|``;
* group B (``−0.5 < dis < 0``): adding an edge increases ``|dis|`` by < 1;
* group C (``dis ≥ 0``): adding an edge costs a full +1.

Only A–B edges can pay for themselves: Lemma 1 gives their gain
``|dis(u)| + 2|dis(v)| − |dis(u)+1| − 1``.  Algorithm 3 (``bipartite``)
greedily consumes the positive-gain A–B edges from a max-priority queue,
re-weighting an A node's remaining edges as its deficit shrinks (gains are
monotone non-increasing, and constant while ``dis(a) ≤ −1`` — Lemma 2), and
retiring nodes that leave their group.  The final edge set is
``E' = E_m ∪ E_BP``.

Zero-gain edges: Algorithm 2 admits them (``gain ≥ 0``) but the paper's
Example 2 notes a zero-gain head "can be selected or discarded according to
user's preference" — the ``accept_zero_gain`` flag (default ``False``,
matching the example's outcome) decides.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.base import EdgeShedder, timed_phase
from repro.core.discrepancy import ArrayDegreeTracker, DegreeTracker, round_half_up
from repro.errors import ReductionError
from repro.graph.graph import Edge, Graph, Node
from repro.graph.matching import greedy_b_matching, greedy_b_matching_ids
from repro.rng import RandomState, ensure_rng

__all__ = ["BM2Shedder", "bipartite_repair", "bm2_reduce_ids"]

#: Tolerance for float noise in gain/discrepancy comparisons.  Expected
#: degrees are products like ``0.4 * 2`` that are inexact in binary, so a
#: mathematically-zero gain can come out as ~1e-16; snapping keeps the
#: zero-gain policy and the A/B/C classification faithful to the paper.
_EPSILON = 1e-9


def _snap(value: float) -> float:
    """Round values within ``_EPSILON`` of an integer or half-integer."""
    doubled = value * 2.0
    nearest = round(doubled)
    if abs(doubled - nearest) < 2.0 * _EPSILON:
        return nearest / 2.0
    return value

def _snap_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_snap` over a float array."""
    doubled = values * 2.0
    nearest = np.round(doubled)
    return np.where(np.abs(doubled - nearest) < 2.0 * _EPSILON, nearest * 0.5, values)


#: Supported capacity rounding rules (Phase 1 ablation).
_ROUNDING_RULES = {
    "half_up": round_half_up,
    "half_even": lambda x: int(round(x)),
    "floor": lambda x: int(x),
    "ceil": lambda x: -int(-x // 1),
}

#: Vectorized counterparts over non-negative ``p·deg`` arrays; elementwise
#: identical to the scalar rules (``np.round`` is banker's rounding like
#: ``round``; int64 truncation equals floor for non-negative inputs).
_ROUNDING_RULES_ARRAY = {
    "half_up": lambda x: np.floor(x + 0.5).astype(np.int64),
    "half_even": lambda x: np.round(x).astype(np.int64),
    "floor": lambda x: x.astype(np.int64),
    "ceil": lambda x: np.ceil(x).astype(np.int64),
}


def bipartite_repair(
    tracker: DegreeTracker,
    candidate_edges: List[Tuple[Node, Node]],
    accept_zero_gain: bool = False,
) -> List[Edge]:
    """Algorithm 3: greedy weighted semi-matching between groups A and B.

    ``candidate_edges`` must be oriented ``(a, b)`` with ``a`` in group A and
    ``b`` in group B under ``tracker``'s current state.  The tracker is
    mutated: every selected edge is added to it.  Returns the selected edges.
    Only ``tracker.dis`` and ``tracker.add_edge`` are used, so any tracker
    flavour works — including :meth:`ArrayDegreeTracker.ids_view`, in which
    case the candidate "nodes" are CSR integer ids.

    Implementation: a lazy max-heap.  Each entry carries the weight it was
    pushed with; stale entries (whose edge was re-weighted or retired) are
    skipped on pop.  Gains only ever decrease as A-deficits shrink, so lazy
    deletion is safe.
    """
    weight: Dict[Tuple[Node, Node], float] = {}
    edges_by_a: Dict[Node, List[Node]] = {}
    alive_b: set = set()

    for a, b in candidate_edges:
        gain = _snap(
            abs(tracker.dis(a))
            + 2 * abs(tracker.dis(b))
            - abs(tracker.dis(a) + 1)
            - 1
        )
        if gain < 0:
            continue
        key = (a, b)
        if key in weight:
            raise ReductionError(f"duplicate candidate edge {key!r}")
        weight[key] = gain
        edges_by_a.setdefault(a, []).append(b)
        alive_b.add(b)

    heap: List[Tuple[float, int, Node, Node]] = []
    counter = 0
    for (a, b), w in weight.items():
        heap.append((-w, counter, a, b))
        counter += 1
    heapq.heapify(heap)

    selected: List[Edge] = []
    while heap:
        negative_w, _, a, b = heapq.heappop(heap)
        w = -negative_w
        key = (a, b)
        current = weight.get(key)
        if current is None or b not in alive_b or current != w:
            continue  # stale or retired entry
        if w == 0 and not accept_zero_gain:
            del weight[key]
            continue

        selected.append(key)
        del weight[key]
        tracker.add_edge(a, b)
        # b's discrepancy is now >= 0: it left group B (line 6).
        alive_b.discard(b)

        dis_a = _snap(tracker.dis(a))
        if dis_a <= -1:
            # Lemma 2 zone: gains of a's remaining edges are unchanged.
            continue
        if dis_a > -0.5:
            # a left group A (lines 15-17): retire all its edges.
            for x in edges_by_a.get(a, ()):
                weight.pop((a, x), None)
            continue
        # -1 < dis(a) <= -0.5: re-weight a's surviving edges (lines 8-14).
        for x in edges_by_a.get(a, ()):
            edge = (a, x)
            if edge not in weight or x not in alive_b:
                continue
            new_w = _snap(abs(dis_a) + 2 * abs(tracker.dis(x)) - abs(1 + dis_a) - 1)
            if new_w > 0 or (new_w == 0 and accept_zero_gain):
                weight[edge] = new_w
                heapq.heappush(heap, (-new_w, counter, a, x))
                counter += 1
            else:
                del weight[edge]
    return selected


class BM2Shedder(EdgeShedder):
    """Algorithm 2: rounded b-matching plus bipartite deficit repair.

    Args:
        rounding: capacity rounding rule — ``"half_up"`` (paper's nearest
            integer, the default), ``"half_even"``, ``"floor"``, ``"ceil"``.
        accept_zero_gain: whether Algorithm 3 keeps zero-gain edges.
        shuffle_edges: scan Phase 1's edges in a random order instead of the
            input order (ablation; the paper scans input order).
        engine: ``"array"`` (default) runs both phases over flat CSR-id
            arrays — vectorized capacity rounding, the fixpoint greedy
            b-matching (:func:`greedy_b_matching_ids`), boolean-mask A/B
            grouping and candidate orientation — feeding Algorithm 3 the
            same gains bit for bit; ``"legacy"`` is the original dict scan,
            kept as the exactness oracle.  Both engines keep the identical
            edge set.
        seed: randomness for ``shuffle_edges``.
    """

    name = "BM2"

    def __init__(
        self,
        rounding: str = "half_up",
        accept_zero_gain: bool = False,
        shuffle_edges: bool = False,
        engine: str = "array",
        seed: RandomState = None,
    ) -> None:
        if rounding not in _ROUNDING_RULES:
            raise ValueError(
                f"rounding must be one of {sorted(_ROUNDING_RULES)}, got {rounding!r}"
            )
        if engine not in ("array", "legacy"):
            raise ValueError(f"engine must be 'array' or 'legacy', got {engine!r}")
        self.rounding = rounding
        self.accept_zero_gain = accept_zero_gain
        self.shuffle_edges = shuffle_edges
        self.engine = engine
        self._seed = seed

    def _reduce(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        if self.engine == "array":
            return self._reduce_array(graph, p)
        return self._reduce_legacy(graph, p)

    def _reduce_legacy(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        """The original dict-based phases (the array engine's oracle)."""
        round_rule = _ROUNDING_RULES[self.rounding]
        capacities = {node: round_rule(p * graph.degree(node)) for node in graph.nodes()}

        stats: Dict[str, Any] = {"capacity_rounding": self.rounding, "engine": self.engine}
        with timed_phase(stats, "phase1_seconds"):
            shuffle_seed = ensure_rng(self._seed) if self.shuffle_edges else None
            matched = greedy_b_matching(graph, capacities, shuffle_seed=shuffle_seed)

        with timed_phase(stats, "phase2_seconds"):
            tracker = DegreeTracker(graph, p)
            for u, v in matched:
                tracker.add_edge(u, v)

            group_a = {node for node in graph.nodes() if _snap(tracker.dis(node)) <= -0.5}
            group_b = {
                node for node in graph.nodes() if -0.5 < _snap(tracker.dis(node)) < 0
            }

            # Phase 1 scans graph.edges(), so every matched edge is already a
            # canonical tuple — plain tuple lookups beat building a frozenset
            # per graph edge.
            matched_keys = set(matched)
            candidates: List[Tuple[Node, Node]] = []
            for u, v in graph.edges():
                if (u, v) in matched_keys:
                    continue
                if u in group_a and v in group_b:
                    candidates.append((u, v))
                elif v in group_a and u in group_b:
                    candidates.append((v, u))

            repaired = bipartite_repair(
                tracker, candidates, accept_zero_gain=self.accept_zero_gain
            )

        reduced = graph.edge_subgraph(list(matched) + [tuple(e) for e in repaired])
        stats.update(
            {
                "matched_edges": len(matched),
                "repair_edges": len(repaired),
                "group_a_size": len(group_a),
                "group_b_size": len(group_b),
                "candidate_edges": len(candidates),
                "tracker_delta": tracker.delta,
            }
        )
        return reduced, stats

    def _reduce_array(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        """Array-native phases over CSR ids; same edge set as the legacy scan.

        Equivalence notes: the id-space edge scan order is the graph's
        (:meth:`CSRAdjacency.edge_list_ids`), the shuffle permutes ``range(m)``
        with the same RNG draws the legacy path spends shuffling the edge
        list, capacities round elementwise-identically, and Algorithm 3 runs
        unchanged on an id view of the tracker whose ``dis`` values are
        bitwise those of the dict tracker — so greedy decisions, groups,
        candidate order and repair selections all coincide.
        """
        csr = graph.csr()
        stats: Dict[str, Any] = {"capacity_rounding": self.rounding, "engine": self.engine}
        kept_u, kept_v = bm2_reduce_ids(
            csr,
            p,
            stats,
            rounding=self.rounding,
            accept_zero_gain=self.accept_zero_gain,
            shuffle_edges=self.shuffle_edges,
            seed=self._seed,
        )
        return csr.subgraph_from_edge_ids(kept_u, kept_v), stats


def bm2_reduce_ids(
    csr: "CSRAdjacency",
    p: float,
    stats: Dict[str, Any],
    rounding: str = "half_up",
    accept_zero_gain: bool = False,
    shuffle_edges: bool = False,
    seed: RandomState = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Both BM2 phases over a CSR snapshot, returning kept edge ids.

    The id-native core behind :meth:`BM2Shedder._reduce_array`; the
    snapshot may equally be a per-shard :class:`repro.graph.csr.CSRView`,
    in which case capacities round the shard's interior degrees and the
    repair runs against shard-local discrepancies.  Kept edges come back
    as ``(u_ids, v_ids)`` — matched edges in scan order followed by the
    repair selections (repair pairs are oriented A-side first, which
    :meth:`CSRAdjacency.subgraph_from_edge_ids` accepts as-is).
    """
    capacities = _ROUNDING_RULES_ARRAY[rounding](p * csr.degree_array())

    with timed_phase(stats, "phase1_seconds"):
        edge_u, edge_v = csr.edge_list_ids()
        m = edge_u.shape[0]
        if shuffle_edges:
            perm = list(range(m))
            ensure_rng(seed).shuffle(perm)
            perm = np.asarray(perm, dtype=np.int64)
            scan_u, scan_v = edge_u[perm], edge_v[perm]
        else:
            perm = None
            scan_u, scan_v = edge_u, edge_v
        scan_kept = greedy_b_matching_ids(scan_u, scan_v, capacities)
        matched_u, matched_v = scan_u[scan_kept], scan_v[scan_kept]
        # Kept-mask over the *unshuffled* scan, for the candidate pass.
        if perm is None:
            kept_mask = scan_kept
        else:
            kept_mask = np.zeros(m, dtype=bool)
            kept_mask[perm[scan_kept]] = True

    with timed_phase(stats, "phase2_seconds"):
        tracker = ArrayDegreeTracker.from_csr(csr, p)
        tracker.add_edges_ids(matched_u, matched_v)

        snapped = _snap_array(tracker.dis_array())
        group_a = snapped <= -0.5
        group_b = (snapped > -0.5) & (snapped < 0)

        a_to_b = ~kept_mask & group_a[edge_u] & group_b[edge_v]
        b_to_a = ~kept_mask & group_b[edge_u] & group_a[edge_v]
        position = np.nonzero(a_to_b | b_to_a)[0]
        forward = a_to_b[position]
        cand_a = np.where(forward, edge_u[position], edge_v[position])
        cand_b = np.where(forward, edge_v[position], edge_u[position])
        candidates = list(zip(cand_a.tolist(), cand_b.tolist()))

        repaired = bipartite_repair(
            tracker.ids_view(), candidates, accept_zero_gain=accept_zero_gain
        )

    repair_count = len(repaired)
    kept_u = np.concatenate(
        (matched_u, np.fromiter((a for a, _ in repaired), np.int64, count=repair_count))
    )
    kept_v = np.concatenate(
        (matched_v, np.fromiter((b for _, b in repaired), np.int64, count=repair_count))
    )
    stats.update(
        {
            "matched_edges": int(np.count_nonzero(scan_kept)),
            "repair_edges": len(repaired),
            "group_a_size": int(np.count_nonzero(group_a)),
            "group_b_size": int(np.count_nonzero(group_b)),
            "candidate_edges": len(candidates),
            "tracker_delta": tracker.delta,
        }
    )
    return kept_u, kept_v
