"""BM2 — B-Matching with Bipartite Matching (Algorithms 2 and 3).

Phase 1 rounds each node's expected degree ``p·deg_G(u)`` to an integer
capacity ``b(u)`` and runs the linear-time greedy maximal b-matching — every
kept edge fits inside both endpoints' capacities, so no node overshoots its
expectation by more than the rounding itself.

Phase 2 repairs the rounding slack.  Nodes are grouped by their discrepancy
``dis(u)`` after Phase 1:

* group A (``dis ≤ −0.5``): adding an incident edge *reduces* ``|dis|``;
* group B (``−0.5 < dis < 0``): adding an edge increases ``|dis|`` by < 1;
* group C (``dis ≥ 0``): adding an edge costs a full +1.

Only A–B edges can pay for themselves: Lemma 1 gives their gain
``|dis(u)| + 2|dis(v)| − |dis(u)+1| − 1``.  Algorithm 3 (``bipartite``)
greedily consumes the positive-gain A–B edges from a max-priority queue,
re-weighting an A node's remaining edges as its deficit shrinks (gains are
monotone non-increasing, and constant while ``dis(a) ≤ −1`` — Lemma 2), and
retiring nodes that leave their group.  The final edge set is
``E' = E_m ∪ E_BP``.

Zero-gain edges: Algorithm 2 admits them (``gain ≥ 0``) but the paper's
Example 2 notes a zero-gain head "can be selected or discarded according to
user's preference" — the ``accept_zero_gain`` flag (default ``False``,
matching the example's outcome) decides.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.core.base import EdgeShedder, timed_phase
from repro.core.discrepancy import (
    ArrayDegreeTracker,
    DegreeTracker,
    _TrackerIdsView,
    round_half_up,
)
from repro.core.sparsify import edcs_beta, prune_candidates_ids
from repro.errors import ReductionError
from repro.graph.graph import Edge, Graph, Node
from repro.graph.matching import (
    greedy_b_matching,
    greedy_b_matching_ids,
    greedy_weighted_b_matching_ids,
)
from repro.rng import RandomState, ensure_rng

__all__ = [
    "BM2Shedder",
    "bipartite_repair",
    "bipartite_repair_ids",
    "bm2_reduce_ids",
    "weighted_bipartite_repair_ids",
]

#: Tolerance for float noise in gain/discrepancy comparisons.  Expected
#: degrees are products like ``0.4 * 2`` that are inexact in binary, so a
#: mathematically-zero gain can come out as ~1e-16; snapping keeps the
#: zero-gain policy and the A/B/C classification faithful to the paper.
_EPSILON = 1e-9


def _snap(value: float) -> float:
    """Round values within ``_EPSILON`` of an integer or half-integer."""
    doubled = value * 2.0
    nearest = round(doubled)
    if abs(doubled - nearest) < 2.0 * _EPSILON:
        return nearest / 2.0
    return value

def _snap_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_snap` over a float array."""
    doubled = values * 2.0
    nearest = np.round(doubled)
    return np.where(np.abs(doubled - nearest) < 2.0 * _EPSILON, nearest * 0.5, values)


#: Supported capacity rounding rules (Phase 1 ablation).
_ROUNDING_RULES = {
    "half_up": round_half_up,
    "half_even": lambda x: int(round(x)),
    "floor": lambda x: int(x),
    "ceil": lambda x: -int(-x // 1),
}

#: Vectorized counterparts over non-negative ``p·deg`` arrays; elementwise
#: identical to the scalar rules (``np.round`` is banker's rounding like
#: ``round``; int64 truncation equals floor for non-negative inputs).
_ROUNDING_RULES_ARRAY = {
    "half_up": lambda x: np.floor(x + 0.5).astype(np.int64),
    "half_even": lambda x: np.round(x).astype(np.int64),
    "floor": lambda x: x.astype(np.int64),
    "ceil": lambda x: np.ceil(x).astype(np.int64),
}


def bipartite_repair(
    tracker: DegreeTracker,
    candidate_edges: List[Tuple[Node, Node]],
    accept_zero_gain: bool = False,
    engine: str = "heap",
) -> List[Edge]:
    """Algorithm 3: greedy weighted semi-matching between groups A and B.

    ``engine="heap"`` (default) is the original lazy max-heap below;
    ``engine="array"`` routes to the gain-bucketed numpy engine
    (:func:`bipartite_repair_ids`), which requires an
    :class:`~repro.core.discrepancy.ArrayDegreeTracker` (or its id view)
    and id-tuple candidates, and returns the identical selections in the
    identical order.

    ``candidate_edges`` must be oriented ``(a, b)`` with ``a`` in group A and
    ``b`` in group B under ``tracker``'s current state.  The tracker is
    mutated: every selected edge is added to it.  Returns the selected edges.
    Only ``tracker.dis`` and ``tracker.add_edge`` are used, so any tracker
    flavour works — including :meth:`ArrayDegreeTracker.ids_view`, in which
    case the candidate "nodes" are CSR integer ids.

    Implementation: a lazy max-heap.  Each entry carries the weight it was
    pushed with; stale entries (whose edge was re-weighted or retired) are
    skipped on pop.  Gains only ever decrease as A-deficits shrink, so lazy
    deletion is safe.
    """
    if engine not in ("heap", "array"):
        raise ValueError(f"engine must be 'heap' or 'array', got {engine!r}")
    if engine == "array":
        if isinstance(tracker, _TrackerIdsView):
            tracker = tracker._tracker
        if not isinstance(tracker, ArrayDegreeTracker):
            raise ValueError(
                "engine='array' requires an ArrayDegreeTracker (or its ids_view)"
            )
        count = len(candidate_edges)
        cand_a = np.fromiter((a for a, _ in candidate_edges), np.int64, count=count)
        cand_b = np.fromiter((b for _, b in candidate_edges), np.int64, count=count)
        sel_a, sel_b = bipartite_repair_ids(
            tracker, cand_a, cand_b, accept_zero_gain=accept_zero_gain
        )
        return list(zip(sel_a.tolist(), sel_b.tolist()))
    weight: Dict[Tuple[Node, Node], float] = {}
    edges_by_a: Dict[Node, List[Node]] = {}
    alive_b: set = set()

    for a, b in candidate_edges:
        gain = _snap(
            abs(tracker.dis(a))
            + 2 * abs(tracker.dis(b))
            - abs(tracker.dis(a) + 1)
            - 1
        )
        if gain < 0:
            continue
        key = (a, b)
        if key in weight:
            raise ReductionError(f"duplicate candidate edge {key!r}")
        weight[key] = gain
        edges_by_a.setdefault(a, []).append(b)
        alive_b.add(b)

    heap: List[Tuple[float, int, Node, Node]] = []
    counter = 0
    for (a, b), w in weight.items():
        heap.append((-w, counter, a, b))
        counter += 1
    heapq.heapify(heap)

    selected: List[Edge] = []
    while heap:
        negative_w, _, a, b = heapq.heappop(heap)
        w = -negative_w
        key = (a, b)
        current = weight.get(key)
        if current is None or b not in alive_b or current != w:
            continue  # stale or retired entry
        if w == 0 and not accept_zero_gain:
            del weight[key]
            continue

        selected.append(key)
        del weight[key]
        tracker.add_edge(a, b)
        # b's discrepancy is now >= 0: it left group B (line 6).
        alive_b.discard(b)

        dis_a = _snap(tracker.dis(a))
        if dis_a <= -1:
            # Lemma 2 zone: gains of a's remaining edges are unchanged.
            continue
        if dis_a > -0.5:
            # a left group A (lines 15-17): retire all its edges.
            for x in edges_by_a.get(a, ()):
                weight.pop((a, x), None)
            continue
        # -1 < dis(a) <= -0.5: re-weight a's surviving edges (lines 8-14).
        for x in edges_by_a.get(a, ()):
            edge = (a, x)
            if edge not in weight or x not in alive_b:
                continue
            new_w = _snap(abs(dis_a) + 2 * abs(tracker.dis(x)) - abs(1 + dis_a) - 1)
            if new_w > 0 or (new_w == 0 and accept_zero_gain):
                weight[edge] = new_w
                heapq.heappush(heap, (-new_w, counter, a, x))
                counter += 1
            else:
                del weight[edge]
    return selected


def bipartite_repair_ids(
    tracker: ArrayDegreeTracker,
    cand_a: np.ndarray,
    cand_b: np.ndarray,
    accept_zero_gain: bool = False,
    engine: str = "bucket",
) -> Tuple[np.ndarray, np.ndarray]:
    """Id-native Algorithm 3 over candidate endpoint arrays.

    ``cand_a``/``cand_b`` are int64 CSR-id arrays oriented A-side first.
    ``engine="bucket"`` runs the gain-bucketed array engine
    (:func:`_bucket_repair_ids`), whose selections, selection order and
    tracker ``Δ`` are bit-identical to the lazy heap's;
    ``engine="heap"`` wraps :func:`bipartite_repair` as the oracle.
    Returns the selected ``(a_ids, b_ids)`` in selection order; the
    tracker is mutated exactly as by the heap path.
    """
    if engine not in ("bucket", "heap"):
        raise ValueError(f"engine must be 'bucket' or 'heap', got {engine!r}")
    if isinstance(tracker, _TrackerIdsView):
        tracker = tracker._tracker
    cand_a = np.asarray(cand_a, dtype=np.int64)
    cand_b = np.asarray(cand_b, dtype=np.int64)
    if engine == "heap":
        candidates = list(zip(cand_a.tolist(), cand_b.tolist()))
        repaired = bipartite_repair(
            tracker.ids_view(), candidates, accept_zero_gain=accept_zero_gain
        )
        count = len(repaired)
        sel_a = np.fromiter((a for a, _ in repaired), np.int64, count=count)
        sel_b = np.fromiter((b for _, b in repaired), np.int64, count=count)
        return sel_a, sel_b
    return _bucket_repair_ids(tracker, cand_a, cand_b, accept_zero_gain)


def _bucket_repair_ids(
    tracker: ArrayDegreeTracker,
    cand_a: np.ndarray,
    cand_b: np.ndarray,
    accept_zero_gain: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gain-bucketed Algorithm 3 — the heap replayed in sorted-run order.

    Why this is *exactly* the heap, not an approximation of it:

    * The heap pops entries in ``(gain desc, counter asc)`` order, where
      counters number pool insertions.  Initial insertions happen in
      candidate order and every re-weight push gets a fresh, larger
      counter — so one ``lexsort`` over (−gain, candidate index) replays
      the initial pool, and a small ``heapq`` of demoted entries replays
      the pushes.  Within one gain value ("bucket") all initial entries
      precede all demoted ones.
    * A re-weight strictly *lowers* an edge's gain (the demoting A node's
      deficit offset ``φ = dis(a)+1`` is > ε after snapping, so the new
      weight ``old − 2φ`` cannot snap back up), hence a bucket never
      grows while being processed and descending-run iteration is safe.
    * Gains, re-weights and ``Δ`` accumulation use the same expressions,
      association order and :func:`_snap` pipeline as the heap, evaluated
      over the same in-place ``dis`` array — bitwise-equal floats make
      every comparison agree.

    The win over the heap: initial gains are one vectorized pass instead
    of a per-edge Python loop, there are no heap pushes/pops for the
    (dominant) never-selected candidates, stale entries are skipped by an
    int8 state array, and each A-node re-weight is one vectorized batch.
    """
    empty = np.empty(0, dtype=np.int64)
    k = int(cand_a.shape[0])
    if k == 0:
        return empty, empty.copy()
    dis = tracker.dis_array()
    n = tracker.num_nodes

    # Initial gains: same expression and association order as the heap's
    # per-edge `_snap(abs(dis(a)) + 2*abs(dis(b)) - abs(dis(a) + 1) - 1)`.
    da = dis[cand_a]
    gains = np.abs(da) + 2.0 * np.abs(dis[cand_b])
    gains -= np.abs(da + 1.0)
    gains -= 1.0
    gains = _snap_array(gains)

    # The heap admits every gain >= 0 edge to the pool (zero-gain edges are
    # only dropped at pop time), so its duplicate check covers them all.
    eligible = np.nonzero(gains >= 0.0)[0]
    if eligible.size:
        keys = cand_a[eligible] * n + cand_b[eligible]
        if np.unique(keys).shape[0] != keys.shape[0]:
            seen: set = set()
            for i in eligible.tolist():
                key = (int(cand_a[i]), int(cand_b[i]))
                if key in seen:
                    raise ReductionError(f"duplicate candidate edge {key!r}")
                seen.add(key)

    # Zero-gain edges, when rejected, are dropped by the heap at pop time
    # with no side effect (a re-weight could only delete them: the new
    # weight is strictly below zero) — so they can be excluded up front.
    if accept_zero_gain:
        alive = eligible
    else:
        alive = np.nonzero(gains > 0.0)[0]
    if alive.size == 0:
        return empty, empty.copy()

    #: 0 = pool (initial weight), 1 = pool (demoted weight), 2 = gone.
    state = np.full(k, 2, dtype=np.int8)
    state[alive] = 0
    b_dead = np.zeros(n, dtype=bool)
    a_retired = np.zeros(n, dtype=bool)

    # Main replay order: descending gain, candidate order within a gain.
    order = np.lexsort((alive, -gains[alive]))
    ms_idx = alive[order]
    ms_gain = gains[alive][order]
    run_starts = np.nonzero(np.concatenate(([True], ms_gain[1:] != ms_gain[:-1])))[0]
    run_ends = np.append(run_starts[1:], ms_gain.shape[0])
    run_gains = ms_gain[run_starts]

    # Pool edges grouped by A node (ascending candidate index within a
    # group — the heap's `edges_by_a` scan order) for re-weight batches.
    by_a = alive[np.argsort(cand_a[alive], kind="stable")]
    uniq_a, group_starts = np.unique(cand_a[by_a], return_index=True)
    group_bounds = np.append(group_starts, by_a.shape[0])
    a_slices = {
        int(node): (int(group_starts[j]), int(group_bounds[j + 1]))
        for j, node in enumerate(uniq_a.tolist())
    }

    ca = cand_a.tolist()
    cb = cand_b.tolist()
    add_edge_ids = tracker.add_edge_ids
    sel_a: List[int] = []
    sel_b: List[int] = []
    demoted: List[Tuple[float, int, int]] = []  # (-gain, counter, cand idx)
    counter = k
    run = 0
    num_runs = int(run_gains.shape[0])

    while run < num_runs or demoted:
        gain_main = float(run_gains[run]) if run < num_runs else None
        gain_dem = -demoted[0][0] if demoted else None
        bucket_gain = (
            gain_main
            if gain_dem is None or (gain_main is not None and gain_main >= gain_dem)
            else gain_dem
        )
        bucket: List[int] = []
        dem_from = 0
        if gain_main is not None and gain_main == bucket_gain:
            seg = ms_idx[run_starts[run] : run_ends[run]]
            seg = seg[
                (state[seg] == 0)
                & ~b_dead[cand_b[seg]]
                & ~a_retired[cand_a[seg]]
            ]
            bucket.extend(seg.tolist())
            dem_from = len(bucket)
            run += 1
        while demoted and -demoted[0][0] == bucket_gain:
            bucket.append(heapq.heappop(demoted)[2])

        for pos, idx in enumerate(bucket):
            # Initial-weight entries require state 0, demoted ones state 1
            # (an entry demoted mid-bucket must not also admit at its old
            # weight); counters guarantee initial entries come first.
            if state[idx] != (0 if pos < dem_from else 1):
                continue
            a = ca[idx]
            b = cb[idx]
            if b_dead[b] or a_retired[a]:
                continue

            state[idx] = 2
            add_edge_ids(a, b)
            sel_a.append(a)
            sel_b.append(b)
            b_dead[b] = True

            dis_a = _snap(float(dis[a]))
            if dis_a <= -1:
                continue  # Lemma 2 zone: a's other gains are unchanged.
            if dis_a > -0.5:
                a_retired[a] = True
                continue
            # -1 < dis(a) <= -0.5: re-weight a's surviving pool edges.
            lo, hi = a_slices[a]
            group = by_a[lo:hi]
            surviving = group[(state[group] == 0) & ~b_dead[cand_b[group]]]
            if surviving.size == 0:
                continue
            new_w = abs(dis_a) + 2.0 * np.abs(dis[cand_b[surviving]])
            new_w -= abs(1 + dis_a)
            new_w -= 1.0
            new_w = _snap_array(new_w)
            keep = new_w >= 0.0 if accept_zero_gain else new_w > 0.0
            state[surviving] = np.where(keep, np.int8(1), np.int8(2))
            for weight, edge_idx in zip(new_w[keep].tolist(), surviving[keep].tolist()):
                heapq.heappush(demoted, (-weight, counter, edge_idx))
                counter += 1

    return (
        np.asarray(sel_a, dtype=np.int64),
        np.asarray(sel_b, dtype=np.int64),
    )


def _weighted_gain(da: float, db: float, w: float) -> float:
    """Algorithm 3's edge gain generalised to an edge of probability mass ``w``.

    Adding ``(a, b)`` changes ``Δ`` by ``|da+w| − |da| + |db+w| − |db|``;
    the gain is the negation, split into the two algebraic regimes:

    * **crossing** (``db + w ≥ 0``): ``b``'s discrepancy crosses zero, so
      ``|db+w| = w − |db|`` and the gain is ``|da| + 2|db| − |da+w| − w`` —
      the Lemma 1 shape.  At ``w = 1`` this branch always fires (group B
      means ``|db| < 0.5 < 1``) and the expression is character-for-character
      the unweighted heap's, so all-ones gains are bit-identical.
    * **non-crossing** (``db + w < 0``): ``b`` stays in deficit and the
      gain simplifies to ``|da| − |da+w| + w``.  Unreachable at ``w = 1``.
    """
    if db + w >= 0:
        return _snap(abs(da) + 2 * abs(db) - abs(da + w) - w)
    return _snap(abs(da) - abs(da + w) + w)


def weighted_bipartite_repair_ids(
    tracker: ArrayDegreeTracker,
    cand_a: np.ndarray,
    cand_b: np.ndarray,
    accept_zero_gain: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Algorithm 3 over *expected-degree mass*: the uncertain-graph repair.

    The lazy max-heap of :func:`bipartite_repair`, with every unit move
    replaced by the edge's weight (:func:`_weighted_gain`).  Two behaviours
    appear that the unit-weight algorithm cannot exhibit, both dormant at
    all-ones weights:

    * a selected edge of weight ``w < |dis(b)|`` leaves ``b`` *inside*
      group B — ``b`` survives with a smaller deficit and its remaining
      pool edges are re-weighted instead of retired;
    * the Lemma 2 plateau starts at ``dis(a) ≤ −max_w`` (the largest
      candidate weight) rather than ``−1``: below it, every incident gain
      is independent of ``dis(a)``, so no re-weight is needed.

    With all weights exactly 1.0, ``b`` always leaves group B on selection,
    ``max_w`` is 1.0, and every gain/re-weight expression evaluates the
    unweighted heap's arithmetic bit for bit — including heap-counter
    consumption — so the selections and their order are identical to
    :func:`bipartite_repair_ids`.  Requires ``tracker.weighted`` (weights
    in ``[0, 1]``; :mod:`repro.graph.io` clamps on read).  The tracker is
    mutated: every selected edge is added.  Returns selected ``(a_ids,
    b_ids)`` in selection order.
    """
    if not tracker.weighted:
        raise ValueError("weighted_bipartite_repair_ids requires a weighted tracker")
    cand_a = np.asarray(cand_a, dtype=np.int64)
    cand_b = np.asarray(cand_b, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    k = int(cand_a.shape[0])
    if k == 0:
        return empty, empty.copy()
    dis = tracker.dis_array()
    n = tracker.num_nodes

    masses = tracker.edge_weights_ids(cand_a, cand_b)
    max_w = float(masses.max())
    # Vectorized initial gains: both `_weighted_gain` branches evaluated
    # with its expressions and association order, selected per edge.
    da = dis[cand_a]
    db = dis[cand_b]
    g_cross = np.abs(da) + 2.0 * np.abs(db)
    g_cross -= np.abs(da + masses)
    g_cross -= masses
    g_non = np.abs(da) - np.abs(da + masses)
    g_non += masses
    gains = _snap_array(np.where(db + masses >= 0.0, g_cross, g_non))

    # The per-edge heap's duplicate check covers every gain >= 0 edge.
    eligible = np.nonzero(gains >= 0.0)[0]
    if eligible.size:
        keys = cand_a[eligible] * n + cand_b[eligible]
        if np.unique(keys).shape[0] != keys.shape[0]:
            seen: set = set()
            for i in eligible.tolist():
                key = (int(cand_a[i]), int(cand_b[i]))
                if key in seen:
                    raise ReductionError(f"duplicate candidate edge {key!r}")
                seen.add(key)

    # Rejected zero-gain edges can be excluded up front: re-weights are
    # non-increasing (|dis(b)| only shrinks, and the crossing/non-crossing
    # branches agree at the |dis(b)| = w boundary), so a zero-gain pool
    # entry could only ever be deleted, never selected.
    pool = eligible if accept_zero_gain else np.nonzero(gains > 0.0)[0]
    if pool.size == 0:
        return empty, empty.copy()

    # Lazy-heap bookkeeping by candidate index: `cur_gain` is the single
    # source of truth (a popped entry is live iff its gain still matches
    # — the dict-of-weights staleness rule, array-indexed), `alive` marks
    # pool membership, `b_alive` group-B survival.  The replay loop is
    # scalar Python over plain lists: candidate groups per endpoint are
    # tiny (~1 edge), where list indexing beats numpy fancy indexing.
    cur_gain = gains.tolist()
    ca_l = cand_a.tolist()
    cb_l = cand_b.tolist()
    w_l = masses.tolist()
    alive = bytearray(k)
    b_alive = bytearray(n)

    # Incident pool edges grouped by endpoint, ascending candidate index —
    # the `edges_by_*` insertion order.
    by_a_node: Dict[int, List[int]] = {}
    by_b_node: Dict[int, List[int]] = {}
    for idx in pool.tolist():
        alive[idx] = 1
        b_alive[cb_l[idx]] = 1
        by_a_node.setdefault(ca_l[idx], []).append(idx)
        by_b_node.setdefault(cb_l[idx], []).append(idx)

    heap: List[Tuple[float, int, int]] = [
        (-cur_gain[idx], i, idx) for i, idx in enumerate(pool.tolist())
    ]
    heapq.heapify(heap)
    counter = int(pool.shape[0])
    heappop, heappush = heapq.heappop, heapq.heappush

    # Scalar mirrors of the tracker state: each selection runs
    # `add_edge_ids`'s float expressions over plain lists (bit-identical,
    # several times faster than numpy scalar indexing), committed back in
    # one `absorb_scalar_state` call at the end.
    dis_l, current_l, expected_l, delta_acc = tracker.export_scalar_state()

    sel_a: List[int] = []
    sel_b: List[int] = []
    while heap:
        negative_w, _, idx = heappop(heap)
        w = -negative_w
        if not alive[idx] or cur_gain[idx] != w:
            continue  # stale or retired entry
        b = cb_l[idx]
        if not b_alive[b]:
            continue
        if w == 0 and not accept_zero_gain:
            alive[idx] = 0
            continue
        a = ca_l[idx]

        sel_a.append(a)
        sel_b.append(b)
        alive[idx] = 0
        w_sel = w_l[idx]
        du, dv = dis_l[a], dis_l[b]
        delta_acc += abs(du + w_sel) + abs(dv + w_sel) - (abs(du) + abs(dv))
        current_l[a] += w_sel
        current_l[b] += w_sel
        dis_l[a] = current_l[a] - expected_l[a]
        dis_l[b] = current_l[b] - expected_l[b]

        dis_b = _snap(dis_l[b])
        if dis_b >= 0:
            # b crossed out of group B (the only possibility at w = 1).
            b_alive[b] = 0
        else:
            # b survives in group B with a smaller deficit: re-weight its
            # surviving pool edges (gains are non-increasing in |dis(b)|).
            for eidx in by_b_node.get(b, ()):
                if not alive[eidx]:
                    continue
                new_w = _weighted_gain(dis_l[ca_l[eidx]], dis_b, w_l[eidx])
                if new_w > 0 or (new_w == 0 and accept_zero_gain):
                    cur_gain[eidx] = new_w
                    heappush(heap, (-new_w, counter, eidx))
                    counter += 1
                else:
                    alive[eidx] = 0

        dis_a = _snap(dis_l[a])
        if dis_a <= -max_w:
            # Weighted Lemma 2 zone: with dis(a) ≤ −w for every incident
            # weight w, each gain reduces to a dis(a)-free expression.
            continue
        edges_a = by_a_node.get(a, ())
        if dis_a > -0.5:
            # a left group A: retire all its edges.
            for eidx in edges_a:
                alive[eidx] = 0
            continue
        # Deficit shrank out of the plateau: re-weight a's surviving edges.
        for eidx in edges_a:
            if not alive[eidx]:
                continue
            x = cb_l[eidx]
            if not b_alive[x]:
                continue
            w_e = w_l[eidx]
            db_x = dis_l[x]
            if db_x + w_e >= 0:
                new_w = _snap(abs(dis_a) + 2 * abs(db_x) - abs(w_e + dis_a) - w_e)
            else:
                new_w = _snap(abs(dis_a) - abs(dis_a + w_e) + w_e)
            if new_w > 0 or (new_w == 0 and accept_zero_gain):
                cur_gain[eidx] = new_w
                heappush(heap, (-new_w, counter, eidx))
                counter += 1
            else:
                alive[eidx] = 0

    tracker.absorb_scalar_state(dis_l, current_l, delta_acc, sel_a, sel_b)
    return (
        np.asarray(sel_a, dtype=np.int64),
        np.asarray(sel_b, dtype=np.int64),
    )


class BM2Shedder(EdgeShedder):
    """Algorithm 2: rounded b-matching plus bipartite deficit repair.

    Args:
        rounding: capacity rounding rule — ``"half_up"`` (paper's nearest
            integer, the default), ``"half_even"``, ``"floor"``, ``"ceil"``.
        accept_zero_gain: whether Algorithm 3 keeps zero-gain edges.
        shuffle_edges: scan Phase 1's edges in a random order instead of the
            input order (ablation; the paper scans input order).
        engine: ``"array"`` (default) runs both phases over flat CSR-id
            arrays — vectorized capacity rounding, the fixpoint greedy
            b-matching (:func:`greedy_b_matching_ids`), boolean-mask A/B
            grouping and candidate orientation — feeding Algorithm 3 the
            same gains bit for bit; ``"legacy"`` is the original dict scan,
            kept as the exactness oracle.  Both engines keep the identical
            edge set.
        sparsify: ``"off"`` (default) feeds Algorithm 3 every unmatched
            A–B edge, bit-identical to the historical edge set; ``"edcs"``
            first prunes the candidates to a bounded-degree subgraph
            (:func:`repro.core.sparsify.prune_candidates_ids`) — near-linear
            Phase 2 with a property-pinned quality bound.  Array engine only.
        sparsify_beta: EDCS degree bound ``β``; ``None`` derives the
            default from :func:`repro.core.sparsify.edcs_beta`.
        repair: Algorithm 3 engine — ``"bucket"`` (gain-bucketed numpy,
            bit-identical to the heap) or ``"heap"`` (the original lazy
            max-heap oracle).  ``None`` resolves to ``"bucket"`` for the
            array engine and ``"heap"`` for legacy.
        seed: randomness for ``shuffle_edges``.
    """

    name = "BM2"

    def __init__(
        self,
        rounding: str = "half_up",
        accept_zero_gain: bool = False,
        shuffle_edges: bool = False,
        engine: str = "array",
        seed: RandomState = None,
        sparsify: str = "off",
        sparsify_beta: "int | None" = None,
        repair: "str | None" = None,
    ) -> None:
        if rounding not in _ROUNDING_RULES:
            raise ValueError(
                f"rounding must be one of {sorted(_ROUNDING_RULES)}, got {rounding!r}"
            )
        if engine not in ("array", "legacy"):
            raise ValueError(f"engine must be 'array' or 'legacy', got {engine!r}")
        if sparsify not in ("off", "edcs"):
            raise ValueError(f"sparsify must be 'off' or 'edcs', got {sparsify!r}")
        if repair not in (None, "bucket", "heap"):
            raise ValueError(f"repair must be 'bucket' or 'heap', got {repair!r}")
        if engine == "legacy":
            if sparsify != "off":
                raise ValueError("sparsify requires engine='array' (legacy is the oracle)")
            if repair == "bucket":
                raise ValueError("repair='bucket' requires engine='array'")
        if sparsify_beta is not None and sparsify_beta < 1:
            raise ValueError(f"sparsify_beta must be positive, got {sparsify_beta}")
        self.rounding = rounding
        self.accept_zero_gain = accept_zero_gain
        self.shuffle_edges = shuffle_edges
        self.engine = engine
        self.sparsify = sparsify
        self.sparsify_beta = sparsify_beta
        self.repair = repair if repair is not None else (
            "bucket" if engine == "array" else "heap"
        )
        self._seed = seed

    def _reduce(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        if self.engine == "array":
            return self._reduce_array(graph, p)
        return self._reduce_legacy(graph, p)

    def _reduce_legacy(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        """The original dict-based phases (the array engine's oracle)."""
        round_rule = _ROUNDING_RULES[self.rounding]
        capacities = {node: round_rule(p * graph.degree(node)) for node in graph.nodes()}

        stats: Dict[str, Any] = {"capacity_rounding": self.rounding, "engine": self.engine}
        with timed_phase(stats, "phase1_seconds"):
            shuffle_seed = ensure_rng(self._seed) if self.shuffle_edges else None
            matched = greedy_b_matching(graph, capacities, shuffle_seed=shuffle_seed)

        with timed_phase(stats, "phase2_seconds"):
            tracker = DegreeTracker(graph, p)
            for u, v in matched:
                tracker.add_edge(u, v)

            group_a = {node for node in graph.nodes() if _snap(tracker.dis(node)) <= -0.5}
            group_b = {
                node for node in graph.nodes() if -0.5 < _snap(tracker.dis(node)) < 0
            }

            # Phase 1 scans graph.edges(), so every matched edge is already a
            # canonical tuple — plain tuple lookups beat building a frozenset
            # per graph edge.
            matched_keys = set(matched)
            candidates: List[Tuple[Node, Node]] = []
            for u, v in graph.edges():
                if (u, v) in matched_keys:
                    continue
                if u in group_a and v in group_b:
                    candidates.append((u, v))
                elif v in group_a and u in group_b:
                    candidates.append((v, u))

            repaired = bipartite_repair(
                tracker, candidates, accept_zero_gain=self.accept_zero_gain
            )

        reduced = graph.edge_subgraph(list(matched) + [tuple(e) for e in repaired])
        stats.update(
            {
                "matched_edges": len(matched),
                "repair_edges": len(repaired),
                "group_a_size": len(group_a),
                "group_b_size": len(group_b),
                "candidate_edges": len(candidates),
                "tracker_delta": tracker.delta,
                "repair_engine": "heap",
                "sparsify": "off",
                "sparsify_beta": 0,
                "phase2_candidate_edges_pruned": 0,
            }
        )
        return reduced, stats

    def _reduce_array(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        """Array-native phases over CSR ids; same edge set as the legacy scan.

        Equivalence notes: the id-space edge scan order is the graph's
        (:meth:`CSRAdjacency.edge_list_ids`), the shuffle permutes ``range(m)``
        with the same RNG draws the legacy path spends shuffling the edge
        list, capacities round elementwise-identically, and Algorithm 3 runs
        unchanged on an id view of the tracker whose ``dis`` values are
        bitwise those of the dict tracker — so greedy decisions, groups,
        candidate order and repair selections all coincide.
        """
        csr = graph.csr()
        stats: Dict[str, Any] = {"capacity_rounding": self.rounding, "engine": self.engine}
        kept_u, kept_v = bm2_reduce_ids(
            csr,
            p,
            stats,
            rounding=self.rounding,
            accept_zero_gain=self.accept_zero_gain,
            shuffle_edges=self.shuffle_edges,
            seed=self._seed,
            sparsify=self.sparsify,
            sparsify_beta=self.sparsify_beta,
            repair=self.repair,
        )
        return csr.subgraph_from_edge_ids(kept_u, kept_v), stats


def bm2_reduce_ids(
    csr: "CSRAdjacency",
    p: float,
    stats: Dict[str, Any],
    rounding: str = "half_up",
    accept_zero_gain: bool = False,
    shuffle_edges: bool = False,
    seed: RandomState = None,
    sparsify: str = "off",
    sparsify_beta: "int | None" = None,
    repair: str = "bucket",
    weighted: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Both BM2 phases over a CSR snapshot, returning kept edge ids.

    The id-native core behind :meth:`BM2Shedder._reduce_array`; the
    snapshot may equally be a per-shard :class:`repro.graph.csr.CSRView`,
    in which case capacities round the shard's interior degrees and the
    repair runs against shard-local discrepancies.  Kept edges come back
    as ``(u_ids, v_ids)`` — matched edges in scan order followed by the
    repair selections (repair pairs are oriented A-side first, which
    :meth:`CSRAdjacency.subgraph_from_edge_ids` accepts as-is).

    ``sparsify="edcs"`` prunes the A–B candidates to a bounded-degree
    subgraph before Algorithm 3 (``β`` from ``sparsify_beta`` or
    :func:`repro.core.sparsify.edcs_beta`); ``repair`` picks the
    Algorithm 3 engine (``"bucket"`` array engine / ``"heap"`` oracle) —
    candidate and selected edges stay int64 arrays end to end.

    ``weighted=True`` (uncertain graphs, :mod:`repro.uncertain`) runs the
    whole algorithm in expected-degree mass: capacities round
    ``p·E[deg]``, Phase 1 admits edges by mass
    (:func:`greedy_weighted_b_matching_ids`), groups come from a weighted
    tracker's discrepancies, and Phase 2 runs the weighted repair heap
    (:func:`weighted_bipartite_repair_ids`; ``repair`` is ignored).  With
    all weights exactly 1.0 every stage degenerates bit-identically, so
    the kept edge arrays equal the unweighted call's.
    """
    if sparsify not in ("off", "edcs"):
        raise ValueError(f"sparsify must be 'off' or 'edcs', got {sparsify!r}")
    if weighted:
        capacities = _ROUNDING_RULES_ARRAY[rounding](
            p * csr.weighted_degree_array()
        ).astype(np.float64)
    else:
        capacities = _ROUNDING_RULES_ARRAY[rounding](p * csr.degree_array())

    with timed_phase(stats, "phase1_seconds"):
        edge_u, edge_v = csr.edge_list_ids()
        m = edge_u.shape[0]
        if shuffle_edges:
            perm = list(range(m))
            ensure_rng(seed).shuffle(perm)
            perm = np.asarray(perm, dtype=np.int64)
            scan_u, scan_v = edge_u[perm], edge_v[perm]
        else:
            perm = None
            scan_u, scan_v = edge_u, edge_v
        if weighted:
            edge_w = csr.edge_weights_array()
            scan_w = edge_w if perm is None else edge_w[perm]
            scan_kept = greedy_weighted_b_matching_ids(scan_u, scan_v, scan_w, capacities)
        else:
            scan_kept = greedy_b_matching_ids(scan_u, scan_v, capacities)
        matched_u, matched_v = scan_u[scan_kept], scan_v[scan_kept]
        # Kept-mask over the *unshuffled* scan, for the candidate pass.
        if perm is None:
            kept_mask = scan_kept
        else:
            kept_mask = np.zeros(m, dtype=bool)
            kept_mask[perm[scan_kept]] = True

    with timed_phase(stats, "phase2_seconds"):
        tracker = ArrayDegreeTracker.from_csr(csr, p, weighted=weighted)
        tracker.add_edges_ids(matched_u, matched_v)

        snapped = _snap_array(tracker.dis_array())
        group_a = snapped <= -0.5
        group_b = (snapped > -0.5) & (snapped < 0)

        a_to_b = ~kept_mask & group_a[edge_u] & group_b[edge_v]
        b_to_a = ~kept_mask & group_b[edge_u] & group_a[edge_v]
        position = np.nonzero(a_to_b | b_to_a)[0]
        forward = a_to_b[position]
        cand_a = np.where(forward, edge_u[position], edge_v[position])
        cand_b = np.where(forward, edge_v[position], edge_u[position])
        total_candidates = int(position.shape[0])

        beta = 0
        pruned = 0
        if sparsify == "edcs":
            beta = int(sparsify_beta) if sparsify_beta is not None else edcs_beta()
            if total_candidates:
                dis = tracker.dis_array()
                da = dis[cand_a]
                if weighted:
                    # Vectorized :func:`_weighted_gain`: the crossing branch
                    # mirrors the unweighted pipeline with the mass array in
                    # place of 1.0 (all-ones → every lane crossing →
                    # bit-identical gains).
                    w_c = tracker.edge_weights_ids(cand_a, cand_b)
                    db = dis[cand_b]
                    crossing_gain = np.abs(da) + 2.0 * np.abs(db)
                    crossing_gain -= np.abs(da + w_c)
                    crossing_gain -= w_c
                    cand_gains = np.where(
                        db + w_c >= 0.0,
                        crossing_gain,
                        np.abs(da) - np.abs(da + w_c) + w_c,
                    )
                else:
                    cand_gains = np.abs(da) + 2.0 * np.abs(dis[cand_b])
                    cand_gains -= np.abs(da + 1.0)
                    cand_gains -= 1.0
                cand_gains = _snap_array(cand_gains)
                keep = prune_candidates_ids(cand_a, cand_b, cand_gains, beta)
                pruned = total_candidates - int(keep.shape[0])
                cand_a = cand_a[keep]
                cand_b = cand_b[keep]

        if weighted:
            sel_a, sel_b = weighted_bipartite_repair_ids(
                tracker, cand_a, cand_b, accept_zero_gain=accept_zero_gain
            )
        else:
            sel_a, sel_b = bipartite_repair_ids(
                tracker, cand_a, cand_b, accept_zero_gain=accept_zero_gain, engine=repair
            )

    kept_u = np.concatenate((matched_u, sel_a))
    kept_v = np.concatenate((matched_v, sel_b))
    stats.update(
        {
            "matched_edges": int(np.count_nonzero(scan_kept)),
            "repair_edges": int(sel_a.shape[0]),
            "group_a_size": int(np.count_nonzero(group_a)),
            "group_b_size": int(np.count_nonzero(group_b)),
            "candidate_edges": total_candidates,
            "tracker_delta": tracker.delta,
            "repair_engine": "weighted-heap" if weighted else repair,
            "sparsify": sparsify,
            "sparsify_beta": beta,
            "phase2_candidate_edges_pruned": pruned,
        }
    )
    return kept_u, kept_v
