"""Degree-discrepancy bookkeeping: ``dis(u)`` and ``Δ``.

The paper's quality objective (Section II-A) is built from two quantities:

* ``dis(u) = deg_G'(u) − p·deg_G(u)`` — how far node ``u``'s degree in the
  reduced graph is from its expectation (Equation 3), and
* ``Δ = Σ_u |dis(u)|`` — the total absolute discrepancy (Equation 4).

Both CRR's rewiring loop and BM2's bipartite phase mutate the candidate edge
set thousands of times, so :class:`DegreeTracker` maintains ``dis`` and ``Δ``
incrementally: adding or removing an edge is O(1).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Tuple

from repro.errors import EdgeNotFoundError, InvalidRatioError, ReductionError
from repro.graph.graph import Edge, Graph, Node

__all__ = ["DegreeTracker", "compute_delta", "round_half_up"]


def round_half_up(value: float) -> int:
    """Round to the nearest integer, halves away from zero.

    The paper writes ``[P]`` for "the nearest integer of P"; Python's
    built-in ``round`` uses banker's rounding, so we pin down half-up
    explicitly to keep targets deterministic and intuitive
    (``round_half_up(4.5) == 5``).
    """
    return int(math.floor(value + 0.5)) if value >= 0 else -int(math.floor(-value + 0.5))


class DegreeTracker:
    """Incremental ``dis(u)`` / ``Δ`` state for a growing/shrinking edge set.

    Construct from the original graph and ratio ``p``; the tracked edge set
    starts empty (every node sits at ``dis(u) = −p·deg_G(u)``).  Feed edges
    through :meth:`add_edge` / :meth:`remove_edge`, or evaluate hypothetical
    moves with the ``*_change`` methods without mutating state.
    """

    def __init__(self, graph: Graph, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise InvalidRatioError(p)
        self._graph = graph
        self._p = p
        #: node -> expected degree in the reduced graph (Equation 1)
        self._expected: Dict[Node, float] = {
            node: p * graph.degree(node) for node in graph.nodes()
        }
        #: node -> current degree in the tracked edge set
        self._current: Dict[Node, int] = dict.fromkeys(graph.nodes(), 0)
        self._edges: set[frozenset] = set()
        self._delta = sum(self._expected.values())

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def p(self) -> float:
        return self._p

    @property
    def delta(self) -> float:
        """Current ``Δ`` over the tracked edge set."""
        return self._delta

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def expected_degree(self, node: Node) -> float:
        """``E(deg_G'(node)) = p · deg_G(node)``."""
        return self._expected[node]

    def current_degree(self, node: Node) -> int:
        return self._current[node]

    def dis(self, node: Node) -> float:
        """``dis(node)`` for the tracked edge set (Equation 3)."""
        return self._current[node] - self._expected[node]

    def has_edge(self, u: Node, v: Node) -> bool:
        return frozenset((u, v)) in self._edges

    def edges(self) -> Iterable[Tuple[Node, Node]]:
        """The tracked edges (arbitrary orientation)."""
        return [tuple(edge) for edge in self._edges]

    def average_delta(self) -> float:
        """``Δ / |V|`` — the per-node discrepancy the paper plots (Fig. 4/5)."""
        n = len(self._expected)
        if n == 0:
            return 0.0
        return self._delta / n

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_edge(self, u: Node, v: Node) -> None:
        """Track edge ``(u, v)``; must exist in the original graph."""
        if not self._graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        key = frozenset((u, v))
        if key in self._edges:
            raise ReductionError(f"edge ({u!r}, {v!r}) is already tracked")
        self._delta += self.add_change(u, v)
        self._edges.add(key)
        self._current[u] += 1
        self._current[v] += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Stop tracking edge ``(u, v)``."""
        key = frozenset((u, v))
        if key not in self._edges:
            raise EdgeNotFoundError(u, v)
        self._delta += self.remove_change(u, v)
        self._edges.discard(key)
        self._current[u] -= 1
        self._current[v] -= 1

    # ------------------------------------------------------------------
    # Hypothetical moves (no mutation)
    # ------------------------------------------------------------------

    def add_change(self, u: Node, v: Node) -> float:
        """Change in ``Δ`` if edge ``(u, v)`` were added.

        This is the paper's ``d_2 = |dis(x)+1| + |dis(y)+1| − (|dis(x)| + |dis(y)|)``.
        """
        du, dv = self.dis(u), self.dis(v)
        return abs(du + 1) + abs(dv + 1) - (abs(du) + abs(dv))

    def remove_change(self, u: Node, v: Node) -> float:
        """Change in ``Δ`` if edge ``(u, v)`` were removed.

        This is the paper's ``d_1 = |dis(u)−1| + |dis(v)−1| − (|dis(u)| + |dis(v)|)``.
        """
        du, dv = self.dis(u), self.dis(v)
        return abs(du - 1) + abs(dv - 1) - (abs(du) + abs(dv))

    def swap_change(self, edge_out: Edge, edge_in: Edge) -> float:
        """Exact change in ``Δ`` for removing ``edge_out`` and adding ``edge_in``.

        When the two edges share no endpoint this equals ``d_1 + d_2`` from
        Algorithm 1 lines 10-11.  When they share an endpoint the independent
        formulas double-count that node; this method computes the exact joint
        effect so CRR's accepted swaps can never increase ``Δ``.
        """
        (u, v), (x, y) = edge_out, edge_in
        touched = {u, v, x, y}
        shift: Dict[Node, int] = dict.fromkeys(touched, 0)
        shift[u] -= 1
        shift[v] -= 1
        shift[x] += 1
        shift[y] += 1
        change = 0.0
        for node in touched:
            before = self.dis(node)
            change += abs(before + shift[node]) - abs(before)
        return change

    def apply_swap(self, edge_out: Edge, edge_in: Edge) -> None:
        """Remove ``edge_out`` and add ``edge_in`` in one move."""
        self.remove_edge(*edge_out)
        self.add_edge(*edge_in)


def compute_delta(original: Graph, reduced: Graph, p: float) -> float:
    """``Δ`` of an already-built reduced graph against ``original`` and ``p``.

    A from-scratch (non-incremental) computation used to validate trackers
    and to score reduction methods that do not use :class:`DegreeTracker`
    internally (e.g. the UDS baseline after reconstruction).
    """
    if not 0.0 < p < 1.0:
        raise InvalidRatioError(p)
    delta = 0.0
    for node in original.nodes():
        reduced_degree = reduced.degree(node) if reduced.has_node(node) else 0
        delta += abs(reduced_degree - p * original.degree(node))
    return delta
