"""Degree-discrepancy bookkeeping: ``dis(u)`` and ``Δ``.

The paper's quality objective (Section II-A) is built from two quantities:

* ``dis(u) = deg_G'(u) − p·deg_G(u)`` — how far node ``u``'s degree in the
  reduced graph is from its expectation (Equation 3), and
* ``Δ = Σ_u |dis(u)|`` — the total absolute discrepancy (Equation 4).

Both CRR's rewiring loop and BM2's bipartite phase mutate the candidate edge
set thousands of times, so :class:`DegreeTracker` maintains ``dis`` and ``Δ``
incrementally: adding or removing an edge is O(1).

The uncertain-graph workload (:mod:`repro.uncertain`) generalises both
quantities to probability mass: ``dis(u) = E[deg_G'(u)] − p·E[deg_G(u)]``
where an edge contributes its weight instead of 1.  The ``weighted_*``
formula variants and :class:`ArrayDegreeTracker`'s ``weighted=True`` mode
implement this with the *same* floating-point expression shapes as the
unweighted paths (``w`` textually replacing ``1.0`` in identical
association order), so with all weights exactly 1.0 every weighted result
is bit-identical to the unweighted tracker's — the degeneration the
property suite pins.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import EdgeNotFoundError, InvalidRatioError, ReductionError
from repro.graph.graph import Edge, Graph, Node

__all__ = [
    "ArrayDegreeTracker",
    "DegreeTracker",
    "add_change_from_dis",
    "compute_delta",
    "remove_change_from_dis",
    "round_half_up",
    "swap_change_from_dis",
    "swap_change_scalar_from_dis",
    "weighted_add_change_from_dis",
    "weighted_remove_change_from_dis",
    "weighted_swap_change_from_dis",
    "weighted_swap_change_scalar_from_dis",
]


def round_half_up(value: float) -> int:
    """Round to the nearest integer, halves away from zero.

    The paper writes ``[P]`` for "the nearest integer of P"; Python's
    built-in ``round`` uses banker's rounding, so we pin down half-up
    explicitly to keep targets deterministic and intuitive
    (``round_half_up(4.5) == 5``).
    """
    return int(math.floor(value + 0.5)) if value >= 0 else -int(math.floor(-value + 0.5))


def add_change_from_dis(dis: np.ndarray, edge_u: np.ndarray, edge_v: np.ndarray) -> np.ndarray:
    """Vectorized ``d_2`` (Δ-change of adding each edge) over a ``dis`` array.

    The formula every tracker flavour shares; both
    :meth:`ArrayDegreeTracker.add_change_ids` and the dynamic-maintenance
    tracker (:mod:`repro.dynamic`) delegate here so their scores cannot
    drift apart.
    """
    du, dv = dis[edge_u], dis[edge_v]
    return np.abs(du + 1.0) + np.abs(dv + 1.0) - (np.abs(du) + np.abs(dv))


def remove_change_from_dis(dis: np.ndarray, edge_u: np.ndarray, edge_v: np.ndarray) -> np.ndarray:
    """Vectorized ``d_1`` (Δ-change of removing each edge) over a ``dis`` array."""
    du, dv = dis[edge_u], dis[edge_v]
    return np.abs(du - 1.0) + np.abs(dv - 1.0) - (np.abs(du) + np.abs(dv))


def swap_change_scalar_from_dis(
    dis: np.ndarray, out_u: int, out_v: int, in_u: int, in_v: int
) -> float:
    """Exact joint swap change for one id quadruple (shared endpoints OK)."""
    touched = {out_u, out_v, in_u, in_v}
    shift: Dict[int, int] = dict.fromkeys(touched, 0)
    shift[out_u] -= 1
    shift[out_v] -= 1
    shift[in_u] += 1
    shift[in_v] += 1
    change = 0.0
    for node in touched:
        before = float(dis[node])
        change += abs(before + shift[node]) - abs(before)
    return change


def swap_change_from_dis(
    dis: np.ndarray,
    out_u: np.ndarray,
    out_v: np.ndarray,
    in_u: np.ndarray,
    in_v: np.ndarray,
) -> np.ndarray:
    """Vectorized exact swap change over batches of candidate swaps.

    The vector expression is the disjoint-endpoint ``d_1 + d_2`` sum;
    positions where the outgoing and incoming edges share an endpoint
    (where that sum double-counts the shared node) are recomputed with
    the exact scalar joint formula.
    """
    d_ou, d_ov = dis[out_u], dis[out_v]
    d_iu, d_iv = dis[in_u], dis[in_v]
    change = (
        np.abs(d_ou - 1.0)
        + np.abs(d_ov - 1.0)
        - (np.abs(d_ou) + np.abs(d_ov))
        + np.abs(d_iu + 1.0)
        + np.abs(d_iv + 1.0)
        - (np.abs(d_iu) + np.abs(d_iv))
    )
    shared = (out_u == in_u) | (out_u == in_v) | (out_v == in_u) | (out_v == in_v)
    if shared.any():
        for k in np.nonzero(shared)[0].tolist():
            change[k] = swap_change_scalar_from_dis(
                dis, int(out_u[k]), int(out_v[k]), int(in_u[k]), int(in_v[k])
            )
    return change


def weighted_add_change_from_dis(
    dis: np.ndarray, edge_u: np.ndarray, edge_v: np.ndarray, weight: np.ndarray
) -> np.ndarray:
    """Weighted ``d_2``: adding each edge moves both endpoints by its weight.

    The expression is :func:`add_change_from_dis` with ``weight`` in place
    of ``1.0`` in the same association order, so all-ones weights produce
    bit-identical scores.
    """
    du, dv = dis[edge_u], dis[edge_v]
    return np.abs(du + weight) + np.abs(dv + weight) - (np.abs(du) + np.abs(dv))


def weighted_remove_change_from_dis(
    dis: np.ndarray, edge_u: np.ndarray, edge_v: np.ndarray, weight: np.ndarray
) -> np.ndarray:
    """Weighted ``d_1`` (Δ-change of removing each weighted edge)."""
    du, dv = dis[edge_u], dis[edge_v]
    return np.abs(du - weight) + np.abs(dv - weight) - (np.abs(du) + np.abs(dv))


def weighted_swap_change_scalar_from_dis(
    dis: np.ndarray,
    out_u: int,
    out_v: int,
    in_u: int,
    in_v: int,
    w_out: float,
    w_in: float,
) -> float:
    """Exact joint weighted swap change for one id quadruple.

    With ``w_out == w_in == 1.0`` the per-node shifts equal the integer
    shifts of :func:`swap_change_scalar_from_dis` exactly.
    """
    touched = {out_u, out_v, in_u, in_v}
    shift: Dict[int, float] = dict.fromkeys(touched, 0.0)
    shift[out_u] -= w_out
    shift[out_v] -= w_out
    shift[in_u] += w_in
    shift[in_v] += w_in
    change = 0.0
    for node in touched:
        before = float(dis[node])
        change += abs(before + shift[node]) - abs(before)
    return change


def weighted_swap_change_from_dis(
    dis: np.ndarray,
    out_u: np.ndarray,
    out_v: np.ndarray,
    in_u: np.ndarray,
    in_v: np.ndarray,
    w_out: np.ndarray,
    w_in: np.ndarray,
) -> np.ndarray:
    """Vectorized exact weighted swap change over batches of candidate swaps.

    Mirrors :func:`swap_change_from_dis` (disjoint ``d_1 + d_2`` with an
    exact scalar recompute at shared endpoints), with each edge moving its
    endpoints by its own weight.
    """
    d_ou, d_ov = dis[out_u], dis[out_v]
    d_iu, d_iv = dis[in_u], dis[in_v]
    change = (
        np.abs(d_ou - w_out)
        + np.abs(d_ov - w_out)
        - (np.abs(d_ou) + np.abs(d_ov))
        + np.abs(d_iu + w_in)
        + np.abs(d_iv + w_in)
        - (np.abs(d_iu) + np.abs(d_iv))
    )
    shared = (out_u == in_u) | (out_u == in_v) | (out_v == in_u) | (out_v == in_v)
    if shared.any():
        for k in np.nonzero(shared)[0].tolist():
            change[k] = weighted_swap_change_scalar_from_dis(
                dis,
                int(out_u[k]), int(out_v[k]), int(in_u[k]), int(in_v[k]),
                float(w_out[k]), float(w_in[k]),
            )
    return change


class DegreeTracker:
    """Incremental ``dis(u)`` / ``Δ`` state for a growing/shrinking edge set.

    Construct from the original graph and ratio ``p``; the tracked edge set
    starts empty (every node sits at ``dis(u) = −p·deg_G(u)``).  Feed edges
    through :meth:`add_edge` / :meth:`remove_edge`, or evaluate hypothetical
    moves with the ``*_change`` methods without mutating state.
    """

    def __init__(self, graph: Graph, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise InvalidRatioError(p)
        self._graph = graph
        self._p = p
        #: node -> expected degree in the reduced graph (Equation 1)
        self._expected: Dict[Node, float] = {
            node: p * graph.degree(node) for node in graph.nodes()
        }
        #: node -> current degree in the tracked edge set
        self._current: Dict[Node, int] = dict.fromkeys(graph.nodes(), 0)
        self._edges: set[frozenset] = set()
        self._delta = sum(self._expected.values())

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def p(self) -> float:
        return self._p

    @property
    def delta(self) -> float:
        """Current ``Δ`` over the tracked edge set."""
        return self._delta

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def expected_degree(self, node: Node) -> float:
        """``E(deg_G'(node)) = p · deg_G(node)``."""
        return self._expected[node]

    def current_degree(self, node: Node) -> int:
        return self._current[node]

    def dis(self, node: Node) -> float:
        """``dis(node)`` for the tracked edge set (Equation 3)."""
        return self._current[node] - self._expected[node]

    def has_edge(self, u: Node, v: Node) -> bool:
        return frozenset((u, v)) in self._edges

    def edges(self) -> Iterable[Tuple[Node, Node]]:
        """The tracked edges (arbitrary orientation)."""
        return [tuple(edge) for edge in self._edges]

    def average_delta(self) -> float:
        """``Δ / |V|`` — the per-node discrepancy the paper plots (Fig. 4/5)."""
        n = len(self._expected)
        if n == 0:
            return 0.0
        return self._delta / n

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add_edge(self, u: Node, v: Node) -> None:
        """Track edge ``(u, v)``; must exist in the original graph."""
        if not self._graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        key = frozenset((u, v))
        if key in self._edges:
            raise ReductionError(f"edge ({u!r}, {v!r}) is already tracked")
        self._delta += self.add_change(u, v)
        self._edges.add(key)
        self._current[u] += 1
        self._current[v] += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Stop tracking edge ``(u, v)``."""
        key = frozenset((u, v))
        if key not in self._edges:
            raise EdgeNotFoundError(u, v)
        self._delta += self.remove_change(u, v)
        self._edges.discard(key)
        self._current[u] -= 1
        self._current[v] -= 1

    # ------------------------------------------------------------------
    # Hypothetical moves (no mutation)
    # ------------------------------------------------------------------

    def add_change(self, u: Node, v: Node) -> float:
        """Change in ``Δ`` if edge ``(u, v)`` were added.

        This is the paper's ``d_2 = |dis(x)+1| + |dis(y)+1| − (|dis(x)| + |dis(y)|)``.
        """
        du, dv = self.dis(u), self.dis(v)
        return abs(du + 1) + abs(dv + 1) - (abs(du) + abs(dv))

    def remove_change(self, u: Node, v: Node) -> float:
        """Change in ``Δ`` if edge ``(u, v)`` were removed.

        This is the paper's ``d_1 = |dis(u)−1| + |dis(v)−1| − (|dis(u)| + |dis(v)|)``.
        """
        du, dv = self.dis(u), self.dis(v)
        return abs(du - 1) + abs(dv - 1) - (abs(du) + abs(dv))

    def swap_change(self, edge_out: Edge, edge_in: Edge) -> float:
        """Exact change in ``Δ`` for removing ``edge_out`` and adding ``edge_in``.

        When the two edges share no endpoint this equals ``d_1 + d_2`` from
        Algorithm 1 lines 10-11.  When they share an endpoint the independent
        formulas double-count that node; this method computes the exact joint
        effect so CRR's accepted swaps can never increase ``Δ``.
        """
        (u, v), (x, y) = edge_out, edge_in
        touched = {u, v, x, y}
        shift: Dict[Node, int] = dict.fromkeys(touched, 0)
        shift[u] -= 1
        shift[v] -= 1
        shift[x] += 1
        shift[y] += 1
        change = 0.0
        for node in touched:
            before = self.dis(node)
            change += abs(before + shift[node]) - abs(before)
        return change

    def apply_swap(self, edge_out: Edge, edge_in: Edge) -> None:
        """Remove ``edge_out`` and add ``edge_in`` in one move."""
        self.remove_edge(*edge_out)
        self.add_edge(*edge_in)


class _TrackerIdsView:
    """Duck-typed tracker facade whose node handles are CSR integer ids.

    :func:`repro.core.bm2.bipartite_repair` only calls ``dis`` and
    ``add_edge``; this view lets the array engine feed it id tuples without
    a label round-trip.  ``dis`` values are bitwise identical to the dict
    tracker's (same ``int - float`` IEEE subtraction), so the repair heap
    makes bitwise-identical decisions.
    """

    __slots__ = ("_tracker",)

    def __init__(self, tracker: "ArrayDegreeTracker") -> None:
        self._tracker = tracker

    def dis(self, node_id: int) -> float:
        return float(self._tracker._dis[node_id])

    def add_edge(self, u: int, v: int) -> None:
        self._tracker.add_edge_ids(u, v)


class ArrayDegreeTracker:
    """Array-native :class:`DegreeTracker`: flat numpy state over CSR ids.

    Node labels are mapped to the graph's CSR integer ids once at
    construction; ``expected``, ``current`` and ``dis`` live in flat arrays,
    tracked edges are integer keys in a hash set, and the ``*_change_ids``
    methods evaluate whole batches of hypothetical moves in one vectorized
    call.  The label-keyed API of :class:`DegreeTracker` is preserved on
    top (``add_edge``, ``swap_change``, ``dis``, ...), so the two classes
    are drop-in interchangeable — the dict tracker stays as the scalar
    oracle the property tests pin this class against.

    Exactness: ``dis`` slots are always written as ``current - expected``
    (the same ``int - float`` IEEE subtraction the dict tracker performs,
    never an incremental drift), and the scalar mutation path accumulates
    ``Δ`` with the dict tracker's exact expression order.  Bulk
    :meth:`add_edges_ids` recomputes ``Δ = Σ|dis|`` directly instead —
    bit-identical whenever every ``p·deg`` is exactly representable (e.g.
    ``p = 0.5``), and within float-association noise (≪ 1e-9) otherwise.

    ``weighted=True`` switches every quantity to probability mass:
    expectations become ``p·E[deg]`` (weighted degrees), the tracked
    ``current`` array turns float, and each edge moves its endpoints by its
    weight.  All expression shapes match the unweighted paths with ``w``
    replacing ``1``, so all-ones weights degenerate bit-identically.
    """

    def __init__(self, graph: Graph, p: float, weighted: bool = False) -> None:
        if not 0.0 < p < 1.0:
            raise InvalidRatioError(p)
        self._graph = graph
        self._bind(graph.csr(), p, weighted)

    @classmethod
    def from_csr(
        cls, csr: "CSRAdjacency", p: float, weighted: bool = False
    ) -> "ArrayDegreeTracker":
        """Build a tracker directly on a CSR snapshot (no :class:`Graph`).

        The snapshot may be a whole-graph export or a per-shard
        :class:`repro.graph.csr.CSRView` — expectations are ``p`` times the
        snapshot's own degree array, so a view tracker scores discrepancy
        against shard-interior degrees.  State and arithmetic are identical
        to the graph-based constructor.
        """
        if not 0.0 < p < 1.0:
            raise InvalidRatioError(p)
        tracker = cls.__new__(cls)
        tracker._graph = None
        tracker._bind(csr, p, weighted)
        return tracker

    def _bind(self, csr: "CSRAdjacency", p: float, weighted: bool = False) -> None:
        self._p = p
        self._csr = csr
        self._is_weighted = bool(weighted)
        n = csr.num_nodes
        self._n = n
        if weighted:
            #: float64[n] — p·E[deg_G(u)] per id (probability-mass mode).
            self._expected = p * csr.weighted_degree_array()
            #: float64[n] — tracked expected degree per id.
            self._current = np.zeros(n, dtype=np.float64)
            #: edge key -> weight, for the scalar mutation paths (memoised
            #: on the snapshot, shared across trackers; read-only here).
            self._weight_of: Dict[int, float] = csr.edge_weight_map()
        else:
            #: float64[n] — p·deg_G(u) per id (Equation 1).
            self._expected = p * csr.degree_array()
            #: int64[n] — tracked degree per id.
            self._current = np.zeros(n, dtype=np.int64)
            self._weight_of = None
        #: float64[n] — current − expected, rewritten per touched slot.
        self._dis = self._current - self._expected
        #: tracked edges as ``min_id * n + max_id`` integer keys.
        self._edge_keys: set = set()
        #: every original-graph edge as an integer key (membership checks;
        #: memoised on the snapshot, shared across trackers).
        self._graph_keys: frozenset = csr.edge_key_set()
        # Python sum in id (= insertion) order, matching the dict tracker's
        # ``sum(self._expected.values())`` bit for bit.
        self._delta = float(sum(self._expected.tolist()))

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def p(self) -> float:
        return self._p

    @property
    def delta(self) -> float:
        """Current ``Δ`` over the tracked edge set."""
        return self._delta

    @property
    def num_edges(self) -> int:
        return len(self._edge_keys)

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def weighted(self) -> bool:
        """Whether this tracker scores probability mass instead of counts."""
        return self._is_weighted

    def expected_degree(self, node: Node) -> float:
        """``E(deg_G'(node)) = p · deg_G(node)`` (mass when weighted)."""
        return float(self._expected[self._id_of(node)])

    def current_degree(self, node: Node):
        """Tracked degree of ``node`` — an int, or a float mass when weighted."""
        value = self._current[self._id_of(node)]
        return float(value) if self._is_weighted else int(value)

    def dis(self, node: Node) -> float:
        """``dis(node)`` for the tracked edge set (Equation 3)."""
        return float(self._dis[self._id_of(node)])

    def dis_array(self) -> np.ndarray:
        """``float64[n]`` of ``dis`` per CSR id.  Treat as read-only."""
        return self._dis

    def has_edge(self, u: Node, v: Node) -> bool:
        return self._edge_key(self._id_of(u), self._id_of(v)) in self._edge_keys

    def edges(self) -> Iterable[Tuple[Node, Node]]:
        """The tracked edges (canonical orientation, arbitrary order)."""
        n = self._n
        labels = self._csr.labels
        return [(labels[key // n], labels[key % n]) for key in self._edge_keys]

    def average_delta(self) -> float:
        """``Δ / |V|`` — the per-node discrepancy the paper plots (Fig. 4/5)."""
        if self._n == 0:
            return 0.0
        return self._delta / self._n

    def ids_view(self) -> _TrackerIdsView:
        """A tracker facade keyed by CSR ids (for :func:`bipartite_repair`)."""
        return _TrackerIdsView(self)

    def _id_of(self, node: Node) -> int:
        return self._csr.index_of[node]

    def _edge_key(self, u: int, v: int) -> int:
        return (u * self._n + v) if u < v else (v * self._n + u)

    def edge_weight_ids(self, u: int, v: int) -> float:
        """Weight of graph edge ``(u, v)`` by CSR ids (1.0 when unweighted)."""
        if not self._is_weighted:
            return 1.0
        return self._weight_of[self._edge_key(u, v)]

    def edge_weights_ids(self, edge_u: np.ndarray, edge_v: np.ndarray) -> np.ndarray:
        """``float64`` weights of graph edges given as id arrays."""
        if not self._is_weighted:
            return np.ones(int(np.asarray(edge_u).shape[0]), dtype=np.float64)
        return self._csr.edge_weights_for(
            np.asarray(edge_u, dtype=np.int64), np.asarray(edge_v, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # Mutation (scalar, exact dict-tracker accumulation order)
    # ------------------------------------------------------------------

    def add_edge(self, u: Node, v: Node) -> None:
        """Track edge ``(u, v)``; must exist in the original graph."""
        self.add_edge_ids(self._id_of(u), self._id_of(v))

    def remove_edge(self, u: Node, v: Node) -> None:
        """Stop tracking edge ``(u, v)``."""
        self.remove_edge_ids(self._id_of(u), self._id_of(v))

    def apply_swap(self, edge_out: Edge, edge_in: Edge) -> None:
        """Remove ``edge_out`` and add ``edge_in`` in one move."""
        self.remove_edge(*edge_out)
        self.add_edge(*edge_in)

    def add_edge_ids(self, u: int, v: int) -> None:
        """Id-native :meth:`add_edge`."""
        key = self._edge_key(u, v)
        if key not in self._graph_keys:
            labels = self._csr.labels
            raise EdgeNotFoundError(labels[u], labels[v])
        if key in self._edge_keys:
            labels = self._csr.labels
            raise ReductionError(f"edge ({labels[u]!r}, {labels[v]!r}) is already tracked")
        # w is the int literal 1 when unweighted, so the float expressions
        # below are character-for-character the dict tracker's.
        w = self._weight_of[key] if self._is_weighted else 1
        dis = self._dis
        du, dv = float(dis[u]), float(dis[v])
        self._delta += abs(du + w) + abs(dv + w) - (abs(du) + abs(dv))
        self._edge_keys.add(key)
        current, expected = self._current, self._expected
        current[u] += w
        current[v] += w
        dis[u] = current[u] - expected[u]
        dis[v] = current[v] - expected[v]

    def remove_edge_ids(self, u: int, v: int) -> None:
        """Id-native :meth:`remove_edge`."""
        key = self._edge_key(u, v)
        if key not in self._edge_keys:
            labels = self._csr.labels
            raise EdgeNotFoundError(labels[u], labels[v])
        w = self._weight_of[key] if self._is_weighted else 1
        dis = self._dis
        du, dv = float(dis[u]), float(dis[v])
        self._delta += abs(du - w) + abs(dv - w) - (abs(du) + abs(dv))
        self._edge_keys.discard(key)
        current, expected = self._current, self._expected
        current[u] -= w
        current[v] -= w
        dis[u] = current[u] - expected[u]
        dis[v] = current[v] - expected[v]

    def apply_swap_ids(self, out_u: int, out_v: int, in_u: int, in_v: int) -> None:
        """Id-native :meth:`apply_swap` (remove then add, dict order)."""
        self.remove_edge_ids(out_u, out_v)
        self.add_edge_ids(in_u, in_v)

    def add_edges_ids(self, edge_u: np.ndarray, edge_v: np.ndarray) -> None:
        """Bulk-track a batch of edges given as endpoint id arrays.

        Equivalent to calling :meth:`add_edge_ids` per edge, except that
        ``current`` is rebuilt with two ``bincount`` calls and ``Δ`` is
        recomputed as ``Σ|dis|`` (see the class docstring for the exactness
        contract).  Raises like the scalar path on non-graph edges, edges
        already tracked, or duplicates within the batch.
        """
        edge_u = np.asarray(edge_u, dtype=np.int64)
        edge_v = np.asarray(edge_v, dtype=np.int64)
        n = self._n
        keys = (np.minimum(edge_u, edge_v) * n + np.maximum(edge_u, edge_v)).tolist()
        new_keys = set(keys)
        if len(new_keys) != len(keys) or (new_keys & self._edge_keys):
            seen: set = set(self._edge_keys)
            for key, u, v in zip(keys, edge_u.tolist(), edge_v.tolist()):
                if key in seen:
                    labels = self._csr.labels
                    raise ReductionError(
                        f"edge ({labels[u]!r}, {labels[v]!r}) is already tracked"
                    )
                seen.add(key)
        if not new_keys <= self._graph_keys:
            for key, u, v in zip(keys, edge_u.tolist(), edge_v.tolist()):
                if key not in self._graph_keys:
                    labels = self._csr.labels
                    raise EdgeNotFoundError(labels[u], labels[v])
        self._edge_keys |= new_keys
        if self._is_weighted:
            # Every key is a validated graph edge by now, so the vectorized
            # snapshot lookup returns the same stored doubles as the dict.
            w = self._csr.edge_weights_for(edge_u, edge_v)
            self._current += np.bincount(edge_u, weights=w, minlength=n)
            self._current += np.bincount(edge_v, weights=w, minlength=n)
        else:
            self._current += np.bincount(edge_u, minlength=n)
            self._current += np.bincount(edge_v, minlength=n)
        np.subtract(self._current, self._expected, out=self._dis)
        self._delta = float(np.abs(self._dis).sum())

    def admit_edges_ids(self, edge_u: np.ndarray, edge_v: np.ndarray) -> None:
        """Bulk :meth:`add_edge_ids` with the scalar path's exact ``Δ`` order.

        Unlike :meth:`add_edges_ids` (which recomputes ``Δ = Σ|dis|``),
        this accumulates ``Δ`` term by term in batch order — bit-identical
        to calling :meth:`add_edge_ids` per edge.  When every endpoint in
        the batch is distinct the per-edge terms are evaluated in one
        vectorized pass (no term can depend on an earlier edge's update);
        batches with repeated endpoints fall back to the scalar loop.
        Validation matches the scalar path: the first offending edge in
        batch order raises.  On the vectorized path nothing is committed
        before the raise; the scalar fallback commits the edges preceding
        the offender, exactly like per-edge :meth:`add_edge_ids` calls.
        """
        edge_u = np.asarray(edge_u, dtype=np.int64)
        edge_v = np.asarray(edge_v, dtype=np.int64)
        count = int(edge_u.shape[0])
        if count == 0:
            return
        endpoints = np.concatenate((edge_u, edge_v))
        if np.unique(endpoints).shape[0] != 2 * count:
            for u, v in zip(edge_u.tolist(), edge_v.tolist()):
                self.add_edge_ids(u, v)
            return
        n = self._n
        keys = (np.minimum(edge_u, edge_v) * n + np.maximum(edge_u, edge_v)).tolist()
        key_set = set(keys)
        if not key_set <= self._graph_keys or (key_set & self._edge_keys):
            labels = self._csr.labels
            for key, u, v in zip(keys, edge_u.tolist(), edge_v.tolist()):
                if key not in self._graph_keys:
                    raise EdgeNotFoundError(labels[u], labels[v])
                if key in self._edge_keys:
                    raise ReductionError(
                        f"edge ({labels[u]!r}, {labels[v]!r}) is already tracked"
                    )
        if self._is_weighted:
            # Keys are validated graph edges; the vectorized snapshot lookup
            # returns the same stored doubles as the dict.
            w = self._csr.edge_weights_for(edge_u, edge_v)
            terms = weighted_add_change_from_dis(self._dis, edge_u, edge_v, w)
        else:
            terms = add_change_from_dis(self._dis, edge_u, edge_v)
        delta = self._delta
        for term in terms.tolist():
            delta += term
        self._delta = delta
        self._edge_keys |= key_set
        current, expected, dis = self._current, self._expected, self._dis
        if self._is_weighted:
            current[edge_u] += w
            current[edge_v] += w
        else:
            current[edge_u] += 1
            current[edge_v] += 1
        dis[edge_u] = current[edge_u] - expected[edge_u]
        dis[edge_v] = current[edge_v] - expected[edge_v]

    def export_scalar_state(self) -> Tuple[List[float], List[float], List[float], float]:
        """Python-list mirrors of ``(dis, current, expected)`` plus ``Δ``.

        For scalar-heavy phases (the weighted repair heap) that interleave
        thousands of single-edge adds with scalar ``dis`` reads: plain-list
        arithmetic runs several times faster than numpy scalar indexing,
        and running :meth:`add_edge_ids`'s expressions over the mirrors
        keeps every intermediate bit-identical to the per-edge path.
        Mutated mirrors commit back via :meth:`absorb_scalar_state`; the
        tracker's own arrays must not be touched in between.
        """
        return (
            self._dis.tolist(),
            self._current.tolist(),
            self._expected.tolist(),
            self._delta,
        )

    def absorb_scalar_state(
        self,
        dis: List[float],
        current: List[float],
        delta: float,
        added_u: List[int],
        added_v: List[int],
    ) -> None:
        """Commit mirrors from :meth:`export_scalar_state` plus edges added.

        ``added_u``/``added_v`` list the ids of the edges the caller added
        to the mirrors (validated like :meth:`add_edge_ids`: each must be
        an original-graph edge that is not already tracked).
        """
        n = self._n
        keys = [
            (u * n + v) if u < v else (v * n + u)
            for u, v in zip(added_u, added_v)
        ]
        new_keys = set(keys)
        if len(new_keys) != len(keys) or (new_keys & self._edge_keys):
            seen: set = set(self._edge_keys)
            for key, u, v in zip(keys, added_u, added_v):
                if key in seen:
                    labels = self._csr.labels
                    raise ReductionError(
                        f"edge ({labels[u]!r}, {labels[v]!r}) is already tracked"
                    )
                seen.add(key)
        if not new_keys <= self._graph_keys:
            for key, u, v in zip(keys, added_u, added_v):
                if key not in self._graph_keys:
                    labels = self._csr.labels
                    raise EdgeNotFoundError(labels[u], labels[v])
        self._edge_keys |= new_keys
        self._dis[:] = dis
        self._current[:] = current
        self._delta = delta

    # ------------------------------------------------------------------
    # Hypothetical moves (no mutation)
    # ------------------------------------------------------------------

    def add_change(self, u: Node, v: Node) -> float:
        """Change in ``Δ`` if edge ``(u, v)`` were added (paper's ``d_2``)."""
        iu, iv = self._id_of(u), self._id_of(v)
        dis = self._dis
        du, dv = float(dis[iu]), float(dis[iv])
        w = self._weight_of[self._edge_key(iu, iv)] if self._is_weighted else 1
        return abs(du + w) + abs(dv + w) - (abs(du) + abs(dv))

    def remove_change(self, u: Node, v: Node) -> float:
        """Change in ``Δ`` if edge ``(u, v)`` were removed (paper's ``d_1``)."""
        iu, iv = self._id_of(u), self._id_of(v)
        dis = self._dis
        du, dv = float(dis[iu]), float(dis[iv])
        w = self._weight_of[self._edge_key(iu, iv)] if self._is_weighted else 1
        return abs(du - w) + abs(dv - w) - (abs(du) + abs(dv))

    def swap_change(self, edge_out: Edge, edge_in: Edge) -> float:
        """Exact joint change in ``Δ`` for ``edge_out`` → ``edge_in``."""
        (u, v), (x, y) = edge_out, edge_in
        return self.swap_change_scalar_ids(
            self._id_of(u), self._id_of(v), self._id_of(x), self._id_of(y)
        )

    def swap_change_scalar_ids(self, out_u: int, out_v: int, in_u: int, in_v: int) -> float:
        """Exact joint swap change for one id quadruple (shared endpoints OK)."""
        if self._is_weighted:
            return weighted_swap_change_scalar_from_dis(
                self._dis, out_u, out_v, in_u, in_v,
                self._weight_of[self._edge_key(out_u, out_v)],
                self._weight_of[self._edge_key(in_u, in_v)],
            )
        return swap_change_scalar_from_dis(self._dis, out_u, out_v, in_u, in_v)

    def add_change_ids(self, edge_u: np.ndarray, edge_v: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`add_change` over endpoint id arrays."""
        if self._is_weighted:
            return weighted_add_change_from_dis(
                self._dis, edge_u, edge_v, self.edge_weights_ids(edge_u, edge_v)
            )
        return add_change_from_dis(self._dis, edge_u, edge_v)

    def remove_change_ids(self, edge_u: np.ndarray, edge_v: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`remove_change` over endpoint id arrays."""
        if self._is_weighted:
            return weighted_remove_change_from_dis(
                self._dis, edge_u, edge_v, self.edge_weights_ids(edge_u, edge_v)
            )
        return remove_change_from_dis(self._dis, edge_u, edge_v)

    def swap_change_ids(
        self,
        out_u: np.ndarray,
        out_v: np.ndarray,
        in_u: np.ndarray,
        in_v: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`swap_change` over batches of candidate swaps.

        Every entry matches :meth:`swap_change` for the same pair of edges,
        including shared-endpoint pairs (see :func:`swap_change_from_dis`).
        """
        if self._is_weighted:
            return weighted_swap_change_from_dis(
                self._dis, out_u, out_v, in_u, in_v,
                self.edge_weights_ids(out_u, out_v),
                self.edge_weights_ids(in_u, in_v),
            )
        return swap_change_from_dis(self._dis, out_u, out_v, in_u, in_v)


def compute_delta(original: Graph, reduced: Graph, p: float) -> float:
    """``Δ`` of an already-built reduced graph against ``original`` and ``p``.

    A from-scratch (non-incremental) computation used to validate trackers
    and to score reduction methods that do not use :class:`DegreeTracker`
    internally (e.g. the UDS baseline after reconstruction).
    """
    if not 0.0 < p < 1.0:
        raise InvalidRatioError(p)
    csr = original.cached_csr()
    if csr is not None:
        # Array path when a current CSR snapshot already exists (every
        # engine run leaves one behind): same per-node terms and the same
        # left-to-right summation order as the scalar loop, so the result
        # is bit-identical.
        reduced_adj = reduced._adj
        empty: set = set()
        reduced_degrees = np.fromiter(
            (len(reduced_adj.get(node, empty)) for node in csr.labels),
            dtype=np.int64,
            count=csr.num_nodes,
        )
        terms = np.abs(reduced_degrees - p * csr.degree_array())
        return float(sum(terms.tolist()))
    delta = 0.0
    for node in original.nodes():
        reduced_degree = reduced.degree(node) if reduced.has_node(node) else 0
        delta += abs(reduced_degree - p * original.degree(node))
    return delta
