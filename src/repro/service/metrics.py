"""Counters and histograms for the shedding service.

The service's observability surface is deliberately dependency-free: a
handful of lock-guarded counters and fixed-bucket histograms that export
as one nested plain dict via :meth:`MetricsRegistry.snapshot`, which the
``repro-shed serve``/``submit`` CLI modes print either human-readably or
as JSON.  Histograms use logarithmic latency buckets, so quantile
estimates are deterministic (bucket upper bounds, never sampled) and the
memory footprint is constant regardless of traffic.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "OP_LATENCY_BOUNDS",
    "latency_us_summary",
]

#: Default histogram bucket upper bounds, in seconds: ~100µs to 5 minutes
#: on a log scale, which brackets everything from a cache hit to a full
#: CRR run on a large surrogate.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Bucket upper bounds for *per-op* churn latencies, in seconds: ~2µs to
#: 100ms on a log scale.  The incremental maintainer runs at tens of
#: microseconds per op, far below the service's request-scale default
#: buckets, so op-latency histograms (CLI ``dynamic``, streaming
#: sessions) need their own resolution.
OP_LATENCY_BOUNDS: Tuple[float, ...] = (
    2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
    1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1,
)


def latency_us_summary(histogram: "Histogram") -> Dict[str, float]:
    """p50/p90/p99/max of a seconds-valued histogram, in microseconds.

    The shared rendering for per-op latency telemetry: the CLI ``dynamic``
    subcommand and the session layer both report this shape, so their
    numbers are directly comparable (same buckets, same conservative
    bucket-upper-bound quantiles).
    """
    snap = histogram.snapshot()
    return {
        "p50": snap["p50"] * 1e6,
        "p90": snap["p90"] * 1e6,
        "p99": snap["p99"] * 1e6,
        "max": snap["max"] * 1e6,
    }


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    Quantiles are conservative (the upper bound of the bucket holding the
    q-th observation), which keeps them deterministic and allocation-free
    — good enough for the latency telemetry the service reports.
    """

    __slots__ = ("name", "_bounds", "_buckets", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self._bounds = tuple(bounds) if bounds is not None else DEFAULT_BUCKET_BOUNDS
        if any(nxt <= prev for prev, nxt in zip(self._bounds, self._bounds[1:])):
            raise ValueError(f"histogram {name}: bounds must be strictly increasing")
        # One overflow bucket past the last bound.
        self._buckets = [0] * (len(self._bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._buckets[bisect_left(self._bounds, value)] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-th observation.

        The overflow bucket reports the exact observed maximum.  Returns
        0.0 when the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = max(1, int(round(q * self._count)))
            seen = 0
            for index, bucket_count in enumerate(self._buckets):
                seen += bucket_count
                if seen >= rank:
                    if index < len(self._bounds):
                        return self._bounds[index]
                    return self._max
            return self._max

    def snapshot(self) -> Dict[str, float]:
        """Summary dict: count, sum, mean, min/max, p50/p90/p99 estimates."""
        with self._lock:
            if self._count == 0:
                return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                        "p50": 0.0, "p90": 0.0, "p99": 0.0}
            count, total = self._count, self._sum
            low, high = self._min, self._max
        return {
            "count": count,
            "sum": total,
            "mean": total / count,
            "min": low,
            "max": high,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Named counters, histograms and gauges, exported as one plain dict.

    Gauges are registered as zero-argument callables and sampled at
    snapshot time — used for instantaneous values like queue depth or
    resident cache bytes that are owned by other components.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create the histogram ``name``."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, bounds)
            return self._histograms[name]

    def register_gauge(self, name: str, sample: Callable[[], float]) -> None:
        """Register a callable sampled at snapshot time."""
        with self._lock:
            self._gauges[name] = sample

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Nested plain dict of every metric — JSON-serialisable as-is."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
            gauges = dict(self._gauges)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "histograms": {name: h.snapshot() for name, h in sorted(histograms.items())},
            "gauges": {name: sample() for name, sample in sorted(gauges.items())},
        }
