"""Content-addressed artifact cache for reduction results.

The same ``(graph, method, p, seed)`` reduction is requested over and
over — across benchmark tables, across evaluation tasks, and across
service requests.  :class:`ArtifactStore` memoises
:class:`~repro.core.base.ReductionResult` objects under a key derived
from the *content* of the input graph (:func:`graph_digest`), so two
structurally identical graphs share one artifact no matter how or where
they were built.

Two tiers:

* **memory** — an LRU of live ``ReductionResult`` objects, bounded by an
  optional byte budget (sizes come from the serialised payload, or a
  structural estimate when the artifact is not persistable);
* **disk** — optional: with ``persist_dir`` set, every artifact with
  JSON-representable node labels is also written as a self-contained
  document (reduced graph via the :func:`repro.graph.io.graph_to_payload`
  wire shape plus Δ/timing/stats metadata), and a fresh store pointed at
  the same directory serves those artifacts as *disk hits* — warm
  restarts skip the algorithms entirely.

Evicting an artifact drops only the in-memory object; the persisted copy
(if any) keeps serving disk hits, and reloading it reconstructs a graph
with identical node/edge iteration order, so downstream computations are
bit-identical (property-tested in
``tests/property/test_service_properties.py``).
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.core.base import ReductionResult
from repro.errors import ServiceError
from repro.graph.graph import Graph
from repro.graph.io import graph_from_payload, graph_to_payload

__all__ = ["ArtifactKey", "ArtifactStore", "graph_digest"]

#: Bump when the persisted document shape changes; loaders skip files
#: with a different version rather than guessing.
ARTIFACT_FORMAT_VERSION = 1

#: Node label types that survive a JSON round-trip unchanged.
_JSONABLE_LABELS = (int, str)


def _node_token(node: object) -> str:
    """A type-qualified, hash-stable textual token for one node label."""
    return f"{type(node).__name__}:{node!r}"


def graph_digest(graph: Graph) -> str:
    """SHA-256 content hash of a graph's node and edge sets.

    Order-independent: two graphs with the same labelled structure digest
    identically regardless of insertion order.  Labels are distinguished
    by type (``1`` vs ``"1"`` differ), and the hash is stable across
    processes (no reliance on ``hash()``).

    Weighted graphs (:attr:`Graph.is_weighted`) fold each edge's weight
    into its token via ``repr``, so the same topology under two weight
    fields caches separately; the byte stream for unweighted graphs is
    unchanged from before weights existed, preserving old disk caches.
    """
    weighted = graph.is_weighted
    hasher = sha256(b"repro-graph-v1\0")
    for token in sorted(_node_token(node) for node in graph.nodes()):
        hasher.update(token.encode("utf-8"))
        hasher.update(b"\0")
    hasher.update(b"--edges--\0")
    edge_tokens = []
    for u, v in graph.edges():
        a, b = _node_token(u), _node_token(v)
        token = a + "|" + b if a <= b else b + "|" + a
        if weighted:
            token += "|" + repr(graph.edge_weight(u, v))
        edge_tokens.append(token)
    for token in sorted(edge_tokens):
        hasher.update(token.encode("utf-8"))
        hasher.update(b"\0")
    return hasher.hexdigest()


@dataclass(frozen=True)
class ArtifactKey:
    """What uniquely determines a reduction's output.

    ``variant`` carries any extra discriminator that changes the result
    (e.g. ``"sources=64"`` for sampled-betweenness CRR); it defaults to
    the exact computation.
    """

    graph_digest: str
    method: str
    p: float
    seed: Optional[int]
    engine: str = "array"
    variant: str = ""

    @property
    def token(self) -> str:
        """Filesystem-safe content token for this key."""
        text = "|".join(
            (
                self.graph_digest,
                self.method.lower(),
                repr(float(self.p)),
                repr(self.seed),
                self.engine,
                self.variant,
            )
        )
        return sha256(text.encode("utf-8")).hexdigest()[:32]


class _Entry:
    """One in-memory cache slot."""

    __slots__ = ("result", "nbytes")

    def __init__(self, result: ReductionResult, nbytes: int) -> None:
        self.result = result
        self.nbytes = nbytes


class ArtifactStore:
    """LRU + byte-budget artifact cache with optional JSON persistence.

    Thread-safe; every public method may be called from service worker
    threads.  ``stats`` is a plain counter dict (puts, memory/disk hits,
    misses, evictions, computes, persist_skipped) — the run-counter
    telemetry the service's cache-hit guarantees are asserted against.
    """

    def __init__(
        self,
        byte_budget: Optional[int] = None,
        persist_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if byte_budget is not None and byte_budget <= 0:
            raise ServiceError(f"byte_budget must be positive, got {byte_budget}")
        self.byte_budget = byte_budget
        self.persist_dir = Path(persist_dir) if persist_dir is not None else None
        self._lock = threading.RLock()
        self._entries: "OrderedDict[ArtifactKey, _Entry]" = OrderedDict()
        self._resident_bytes = 0
        self._disk_index: Dict[ArtifactKey, Path] = {}
        #: Keys currently being written by _persist; prevents two threads
        #: racing put() from double-writing the same artifact file.
        self._persisting: set = set()
        self.stats: Dict[str, int] = {
            "puts": 0,
            "memory_hits": 0,
            "disk_hits": 0,
            "misses": 0,
            "evictions": 0,
            "computes": 0,
            "persist_skipped": 0,
            "load_errors": 0,
        }
        if self.persist_dir is not None:
            self.persist_dir.mkdir(parents=True, exist_ok=True)
            self._scan_persist_dir()

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------

    def key_for(
        self,
        graph: Graph,
        method: str,
        p: float,
        seed: Optional[int],
        engine: str = "array",
        variant: str = "",
    ) -> ArtifactKey:
        """Build the content-addressed key for one reduction request."""
        return ArtifactKey(
            graph_digest=graph_digest(graph),
            method=method.lower(),
            p=float(p),
            seed=seed,
            engine=engine,
            variant=variant,
        )

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------

    def get(self, key: ArtifactKey, original: Graph) -> Optional[ReductionResult]:
        """Return the cached result for ``key``, or ``None`` on a miss.

        ``original`` is the caller's input graph, used to reconstitute a
        :class:`ReductionResult` when the artifact is loaded from disk
        (in-memory hits return the memoised object as-is).
        """
        result, _ = self.get_with_tier(key, original)
        return result

    def get_with_tier(
        self, key: ArtifactKey, original: Graph
    ) -> Tuple[Optional[ReductionResult], Optional[str]]:
        """Like :meth:`get`, but also report which tier served the hit.

        Returns ``(result, tier)`` where ``tier`` is ``"memory"``,
        ``"disk"``, or ``None`` on a miss — the authoritative answer, not
        an inference from counter deltas (which races under concurrency).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats["memory_hits"] += 1
                return entry.result, "memory"
            path = self._disk_index.get(key)
        if path is not None:
            result = self._load(key, path, original)
            if result is not None:
                with self._lock:
                    self.stats["disk_hits"] += 1
                    self._insert(key, result, nbytes=path.stat().st_size)
                return result, "disk"
        with self._lock:
            self.stats["misses"] += 1
        return None, None

    def put(self, key: ArtifactKey, result: ReductionResult) -> None:
        """Insert ``result`` under ``key``, persisting it when possible."""
        nbytes: Optional[int] = None
        if self.persist_dir is not None:
            with self._lock:
                should_persist = (
                    key not in self._disk_index and key not in self._persisting
                )
                if should_persist:
                    self._persisting.add(key)
            if should_persist:
                try:
                    nbytes = self._persist(key, result)
                finally:
                    with self._lock:
                        self._persisting.discard(key)
        with self._lock:
            self.stats["puts"] += 1
            self._insert(key, result, nbytes=nbytes)

    def count_compute(self) -> None:
        """Record that a caller ran a reduction instead of hitting the cache.

        :meth:`get_or_compute` does this automatically; callers that pair
        :meth:`get`/:meth:`put` around their own execution (the service
        worker) call this so ``stats["computes"]`` stays an accurate
        run counter.
        """
        with self._lock:
            self.stats["computes"] += 1

    def get_or_compute(
        self,
        graph: Graph,
        method: str,
        p: float,
        seed: Optional[int],
        compute: Callable[[], ReductionResult],
        engine: str = "array",
        variant: str = "",
    ) -> Tuple[ReductionResult, Optional[str]]:
        """Memoised reduction: returns ``(result, hit)``.

        ``hit`` is ``"memory"``, ``"disk"``, or ``None`` when ``compute``
        actually ran (also counted in ``stats["computes"]``).
        """
        key = self.key_for(graph, method, p, seed, engine=engine, variant=variant)
        cached, hit = self.get_with_tier(key, graph)
        if cached is not None:
            return cached, hit
        with self._lock:
            self.stats["computes"] += 1
        result = compute()
        self.put(key, result)
        return result, None

    # ------------------------------------------------------------------
    # Eviction / deletion
    # ------------------------------------------------------------------

    def evict(self, key: ArtifactKey) -> bool:
        """Drop the in-memory object for ``key`` (persisted copy survives)."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._resident_bytes -= entry.nbytes
            self.stats["evictions"] += 1
            return True

    def evict_all(self) -> int:
        """Drop every in-memory object; returns how many were evicted."""
        with self._lock:
            count = len(self._entries)
            self.stats["evictions"] += count
            self._entries.clear()
            self._resident_bytes = 0
            return count

    def delete(self, key: ArtifactKey) -> bool:
        """Remove ``key`` from memory *and* disk."""
        removed = self.evict(key)
        if removed:
            # evict() counted an eviction; a delete is not an eviction.
            with self._lock:
                self.stats["evictions"] -= 1
        with self._lock:
            path = self._disk_index.pop(key, None)
        if path is not None:
            path.unlink(missing_ok=True)
            removed = True
        return removed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        """Bytes accounted to in-memory artifacts."""
        return self._resident_bytes

    def __len__(self) -> int:
        """Number of distinct artifacts known (memory or disk)."""
        with self._lock:
            return len(self._entries.keys() | self._disk_index.keys())

    def __contains__(self, key: ArtifactKey) -> bool:
        with self._lock:
            return key in self._entries or key in self._disk_index

    def in_memory(self, key: ArtifactKey) -> bool:
        """Whether ``key`` currently has a live in-memory object."""
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _insert(self, key: ArtifactKey, result: ReductionResult, nbytes: Optional[int]) -> None:
        """Insert/refresh the in-memory entry and evict LRU to budget."""
        if nbytes is None:
            nbytes = self._estimate_bytes(result)
        old = self._entries.pop(key, None)
        if old is not None:
            self._resident_bytes -= old.nbytes
        self._entries[key] = _Entry(result, nbytes)
        self._resident_bytes += nbytes
        if self.byte_budget is None:
            return
        while self._resident_bytes > self.byte_budget and len(self._entries) > 1:
            evicted_key, evicted = self._entries.popitem(last=False)
            self._resident_bytes -= evicted.nbytes
            self.stats["evictions"] += 1
        # A single artifact larger than the whole budget stays resident
        # only if it has no persisted copy to fall back to.
        if (
            self._resident_bytes > self.byte_budget
            and key in self._disk_index
            and key in self._entries
        ):
            entry = self._entries.pop(key)
            self._resident_bytes -= entry.nbytes
            self.stats["evictions"] += 1

    @staticmethod
    def _estimate_bytes(result: ReductionResult) -> int:
        """Structural size estimate for artifacts we cannot serialise."""
        reduced = result.reduced
        return 48 * reduced.num_edges + 24 * reduced.num_nodes + 512

    @staticmethod
    def _persistable(graph: Graph) -> bool:
        return all(isinstance(node, _JSONABLE_LABELS) for node in graph.nodes())

    def _persist(self, key: ArtifactKey, result: ReductionResult) -> Optional[int]:
        """Write the artifact document; returns its size or ``None``."""
        if not self._persistable(result.reduced):
            with self._lock:
                self.stats["persist_skipped"] += 1
            return None
        document = {
            "format_version": ARTIFACT_FORMAT_VERSION,
            "key": {
                "graph_digest": key.graph_digest,
                "method": key.method,
                "p": key.p,
                "seed": key.seed,
                "engine": key.engine,
                "variant": key.variant,
            },
            "meta": {
                "method_name": result.method,
                "delta": result.delta,
                "elapsed_seconds": result.elapsed_seconds,
                "stats": _serialisable_stats(result.stats),
            },
            "graph": graph_to_payload(result.reduced),
        }
        path = self.persist_dir / f"{key.token}.json"
        try:
            data = json.dumps(document, default=_json_fallback)
            path.write_text(data, encoding="utf-8")
        except (TypeError, ValueError, OSError):
            # Unserialisable stats or a failed write (disk full,
            # permissions): the in-memory tier still serves this key.
            with self._lock:
                self.stats["persist_skipped"] += 1
            return None
        with self._lock:
            self._disk_index[key] = path
        return len(data.encode("utf-8"))

    def _load(
        self, key: ArtifactKey, path: Path, original: Graph
    ) -> Optional[ReductionResult]:
        """Reconstitute a ReductionResult from one artifact document."""
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            if document.get("format_version") != ARTIFACT_FORMAT_VERSION:
                raise ServiceError(f"{path}: unsupported artifact format")
            meta = document["meta"]
            reduced = graph_from_payload(document["graph"], where=str(path))
            return ReductionResult(
                method=meta["method_name"],
                original=original,
                reduced=reduced,
                p=key.p,
                delta=float(meta["delta"]),
                elapsed_seconds=float(meta["elapsed_seconds"]),
                stats=dict(meta.get("stats") or {}),
            )
        except Exception:
            with self._lock:
                self.stats["load_errors"] += 1
                self._disk_index.pop(key, None)
            return None

    def _scan_persist_dir(self) -> None:
        """Index persisted artifacts so a fresh store serves disk hits."""
        for path in sorted(self.persist_dir.glob("*.json")):
            try:
                document = json.loads(path.read_text(encoding="utf-8"))
                if document.get("format_version") != ARTIFACT_FORMAT_VERSION:
                    continue
                raw = document["key"]
                key = ArtifactKey(
                    graph_digest=raw["graph_digest"],
                    method=raw["method"],
                    p=float(raw["p"]),
                    seed=raw["seed"],
                    engine=raw.get("engine", "array"),
                    variant=raw.get("variant", ""),
                )
                self._disk_index[key] = path
            except Exception:
                self.stats["load_errors"] += 1


def _serialisable_stats(stats: Dict[str, Any]) -> Dict[str, Any]:
    """Best-effort stats for the persisted document.

    Shedders stash arbitrary objects in ``stats`` (UDS keeps a whole
    ``GraphSummary``); dropping the odd unserialisable entry is far
    better than skipping the artifact — the reduced graph and Δ are the
    payload, the stats are garnish.  Dropped keys are recorded so the
    reloaded result is honest about what it lost.
    """
    kept: Dict[str, Any] = {}
    dropped = []
    for name, value in stats.items():
        try:
            json.dumps(value, default=_json_fallback)
        except (TypeError, ValueError):
            dropped.append(name)
        else:
            kept[name] = value
    if dropped:
        kept["stats_dropped_on_persist"] = sorted(dropped)
    return kept


def _json_fallback(value: Any):
    """Serialise numpy scalars/arrays and sets that appear in shedder stats."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return tolist()
    if isinstance(value, (set, frozenset, tuple)):
        return sorted(value) if isinstance(value, (set, frozenset)) else list(value)
    raise TypeError(f"not JSON-serialisable: {type(value).__name__}")
