"""Priority scheduling and worker pools for the shedding service.

Three execution modes, selected by the service:

* ``inline`` — jobs run synchronously in the submitting thread; the
  zero-moving-parts mode the deterministic tests lean on.
* ``thread`` — a bounded pool of worker threads drains a priority queue
  (higher ``priority`` first, FIFO within a level).  Reductions are
  CPU-bound Python, so threads serialise on the GIL — this mode buys
  queueing/backpressure semantics, not parallel speedup.
* ``process`` — worker threads hand the actual reduction to a bounded
  ``multiprocessing`` pool via :class:`ProcessEngine`, which ships the
  flat CSR edge arrays (the :mod:`repro.graph.parallel` pattern: numpy
  id arrays plus the label list, never the adjacency dicts) and rebuilds
  the result parent-side.  Because the worker replays nodes in label
  order and edges in ``Graph.edges()`` order, the child's rebuilt graph
  has the *identical* CSR snapshot and edge iteration order — so the
  array-engine reductions are bit-identical to an inline run.

Determinism does not depend on the mode: every job builds a fresh
shedder from its own request seed (seed routing), so results are a pure
function of the request regardless of worker interleaving.

Per-job timeouts are enforced where the platform allows: a process-mode
job whose deadline expires raises :class:`JobTimeoutError` in the worker
thread (the abandoned pool task finishes and is discarded — noted in the
pool stats); thread-mode jobs cannot be interrupted mid-Python and
instead report deadline overruns in their result metadata.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import multiprocessing.pool
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.base import ReductionResult
from repro.errors import ServiceError
from repro.graph.graph import Graph
from repro.service.request import (
    JobHandle,
    JobStatus,
    ReductionRequest,
    ServiceResult,
    make_shedder,
)

__all__ = ["JobTimeoutError", "ProcessEngine", "QueuedJob", "Scheduler"]

#: ``sharded`` schedules like ``thread`` but executes CRR/BM2 jobs through
#: :class:`repro.shard.ShardedShedder` (partition → per-shard kernels →
#: reconciliation), fanning each job out across processes.
SCHEDULER_MODES = ("inline", "thread", "process", "sharded")


class JobTimeoutError(ServiceError):
    """A job's execution exceeded its wall-clock budget."""


@dataclass(order=True)
class QueuedJob:
    """One admitted job, ordered for the priority heap."""

    sort_key: Tuple[int, int] = field(init=False, repr=False)
    request: ReductionRequest = field(compare=False)
    graph: Graph = field(compare=False)
    method: str = field(compare=False)
    handle: JobHandle = field(compare=False)
    sequence: int = field(compare=False)
    enqueued_at: float = field(compare=False)
    metadata: Dict[str, Any] = field(compare=False, default_factory=dict)

    def __post_init__(self) -> None:
        # Higher priority first; submission order breaks ties.
        self.sort_key = (-self.request.priority, self.sequence)


class Scheduler:
    """Bounded worker pool draining a priority queue of jobs.

    ``runner`` is the service callback that fully executes one job
    (budget lease, cache write, handle completion).  The scheduler owns
    only ordering, worker lifecycle, and queue accounting.
    """

    def __init__(
        self,
        runner: Callable[[QueuedJob], None],
        num_workers: int = 2,
        inline: bool = False,
    ) -> None:
        if num_workers < 1:
            raise ServiceError(f"num_workers must be >= 1, got {num_workers}")
        self._runner = runner
        self.num_workers = num_workers
        self.inline = inline
        self._heap: List[QueuedJob] = []
        self._condition = threading.Condition()
        self._sequence = itertools.count()
        self._active = 0
        self._stopping = False
        self._workers: List[threading.Thread] = []

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def next_sequence(self) -> int:
        return next(self._sequence)

    def submit(self, job: QueuedJob) -> None:
        """Queue ``job`` (or run it now in inline mode)."""
        if self.inline:
            job.handle._mark(JobStatus.RUNNING)
            self._run_guarded(job)
            return
        with self._condition:
            if self._stopping:
                raise ServiceError("scheduler is shut down")
            heapq.heappush(self._heap, job)
            job.handle._mark(JobStatus.QUEUED)
            self._ensure_workers()
            self._condition.notify()

    @property
    def queue_depth(self) -> int:
        with self._condition:
            return len(self._heap)

    @property
    def active_jobs(self) -> int:
        return self._active

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------

    def _ensure_workers(self) -> None:
        """Lazily spawn worker threads up to the configured pool size."""
        while len(self._workers) < self.num_workers:
            name = f"repro-shed-worker-{len(self._workers)}"
            worker = threading.Thread(target=self._worker_loop, name=name, daemon=True)
            self._workers.append(worker)
            worker.start()

    def _worker_loop(self) -> None:
        while True:
            with self._condition:
                while not self._heap and not self._stopping:
                    self._condition.wait()
                if self._stopping and not self._heap:
                    return
                job = heapq.heappop(self._heap)
                self._active += 1
            try:
                if job.handle.cancel_requested:
                    job.metadata["cancelled_in_queue"] = True
                else:
                    job.handle._mark(JobStatus.RUNNING)
                self._run_guarded(job)
            finally:
                with self._condition:
                    self._active -= 1
                    self._condition.notify_all()

    def _run_guarded(self, job: QueuedJob) -> None:
        """Run one job; a runner that raises must not kill the worker.

        The runner normally resolves the handle itself (including on
        failure); this is the backstop for bugs/errors that escape it —
        the handle is failed so ``result()`` callers unblock, and the
        worker thread survives to drain the rest of the queue.
        """
        try:
            self._runner(job)
        except Exception as error:
            job.handle._complete(
                ServiceResult(
                    request=job.request,
                    status=JobStatus.FAILED,
                    error=f"internal error: {type(error).__name__}: {error}",
                )
            )

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the queue is empty and no job is running."""
        if self.inline:
            return True
        with self._condition:
            return self._condition.wait_for(
                lambda: not self._heap and self._active == 0, timeout
            )

    def shutdown(self, wait: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting work; optionally wait for queued jobs to finish."""
        if wait:
            self.drain(timeout=timeout)
        with self._condition:
            self._stopping = True
            self._condition.notify_all()
        for worker in self._workers:
            worker.join(timeout=timeout)
        self._workers.clear()


# ----------------------------------------------------------------------
# Process execution
# ----------------------------------------------------------------------


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap COW inheritance), spawn elsewhere."""
    method = "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    return multiprocessing.get_context(method)


def _reduce_job(payload: Tuple) -> Tuple[np.ndarray, np.ndarray, float, float, Dict, str]:
    """Worker-side entry: rebuild the graph from flat arrays and reduce.

    Nodes are added in label order and edges replayed in the parent's
    ``Graph.edges()`` iteration order, which reproduces the parent
    graph's canonical edge iteration exactly (the per-node canonical
    neighbour subsequences are preserved) — the property the array
    engines' bit-identity rests on.
    """
    labels, u_ids, v_ids, edge_w, method, p, seed, engine, num_sources, weighted = payload
    graph = Graph(nodes=labels)
    if edge_w is None:
        for i, j in zip(u_ids.tolist(), v_ids.tolist()):
            graph.add_edge(labels[i], labels[j])
    else:
        for i, j, w in zip(u_ids.tolist(), v_ids.tolist(), edge_w.tolist()):
            graph.add_edge(labels[i], labels[j], weight=w)
    shedder = make_shedder(
        method, seed=seed, engine=engine, num_sources=num_sources, weighted=weighted
    )
    result = shedder.reduce(graph, p)
    index_of = {node: idx for idx, node in enumerate(labels)}
    reduced_edges = list(result.reduced.edges())
    out_u = np.fromiter(
        (index_of[u] for u, _ in reduced_edges), dtype=np.int64, count=len(reduced_edges)
    )
    out_v = np.fromiter(
        (index_of[v] for _, v in reduced_edges), dtype=np.int64, count=len(reduced_edges)
    )
    return out_u, out_v, result.delta, result.elapsed_seconds, result.stats, result.method


class ProcessEngine:
    """Bounded process pool running reductions out-of-process.

    Ships ``(labels, edge-id arrays, optional weights, method, p, seed)``
    per job — the
    flat-array pattern of :mod:`repro.graph.parallel` — and rebuilds the
    :class:`ReductionResult` parent-side from the returned edge ids.
    """

    def __init__(self, num_workers: int = 2) -> None:
        if num_workers < 1:
            raise ServiceError(f"num_workers must be >= 1, got {num_workers}")
        self.num_workers = num_workers
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._lock = threading.Lock()
        #: Tasks whose result was abandoned after a timeout (the pool
        #: worker still finishes them; their output is discarded).
        self.abandoned_tasks = 0
        # Create the pool eagerly, while the constructing thread is (in
        # the service's lifecycle) still the only one running: forking a
        # multi-threaded process can deadlock children that inherit held
        # locks, so never fork lazily from a scheduler worker thread.
        self._ensure_pool()

    def _ensure_pool(self) -> multiprocessing.pool.Pool:
        with self._lock:
            if self._pool is None:
                self._pool = _pool_context().Pool(processes=self.num_workers)
            return self._pool

    def execute(
        self,
        graph: Graph,
        method: str,
        p: float,
        seed: Optional[int],
        engine: str = "array",
        num_sources: Optional[int] = None,
        timeout: Optional[float] = None,
        weighted: bool = False,
    ) -> ReductionResult:
        """Run one reduction in the pool; raise on deadline expiry."""
        csr = graph.csr()
        u_ids, v_ids = csr.edge_list_ids()
        # Weights ship whenever the graph carries them (weight-blind runs
        # on weighted graphs still need worker-side Δ_E stats); ``weighted``
        # additionally selects the probability-aware shedder.
        edge_w = csr.edge_weights_for(u_ids, v_ids) if csr.is_weighted else None
        payload = (
            csr.labels, u_ids, v_ids, edge_w, method, p, seed, engine,
            num_sources, weighted,
        )
        task = self._ensure_pool().apply_async(_reduce_job, (payload,))
        try:
            out_u, out_v, delta, elapsed, stats, method_name = task.get(timeout)
        except multiprocessing.TimeoutError:
            with self._lock:
                self.abandoned_tasks += 1
            raise JobTimeoutError(
                f"{method} reduction exceeded its {timeout:.3f}s budget"
            ) from None
        labels = csr.labels
        edges = [
            (labels[i], labels[j]) for i, j in zip(out_u.tolist(), out_v.tolist())
        ]
        reduced = graph.edge_subgraph(edges)
        return ReductionResult(
            method=method_name,
            original=graph,
            reduced=reduced,
            p=float(p),
            delta=delta,
            elapsed_seconds=elapsed,
            stats=stats,
        )

    def close(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
