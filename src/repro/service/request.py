"""Request/response types and the shedder factory for the service.

A :class:`ReductionRequest` names the input graph (inline object or a
``graph_ref`` string), the method/ratio/seed of the reduction, and the
per-request budgets admission control enforces: a wall-clock deadline, a
resident-edge cap, and a scheduling priority.  Submitting one yields a
:class:`JobHandle` — a small future that resolves to a
:class:`ServiceResult` wrapping the underlying
:class:`~repro.core.base.ReductionResult` plus serving metadata (cache
hit tier, degradation trail, queue/execute timings).

:func:`make_shedder` is the single string-to-shedder factory; the CLI
and the service's worker processes both route through it, so a method
key means the same thing everywhere.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.baselines.uds import UDSSummarizer
from repro.core.base import EdgeShedder, ReductionResult
from repro.core.bm2 import BM2Shedder
from repro.core.crr import CRRShedder
from repro.core.random_shed import DegreeProportionalShedder, RandomShedder
from repro.errors import ServiceError
from repro.graph.graph import Graph
from repro.uncertain.shedders import WeightedBM2Shedder, WeightedCRRShedder

__all__ = [
    "KNOWN_METHODS",
    "JobStatus",
    "JobHandle",
    "ReductionRequest",
    "ServiceResult",
    "make_shedder",
]

#: Method keys accepted by :func:`make_shedder` (lower-case).
KNOWN_METHODS = ("crr", "bm2", "bm2-sparse", "uds", "random", "degree-proportional")


def make_shedder(
    method: str,
    seed: Optional[int] = 0,
    engine: str = "array",
    num_sources: Optional[int] = None,
    sparsify: Optional[str] = None,
    sparsify_beta: Optional[int] = None,
    weighted: bool = False,
) -> EdgeShedder:
    """Build the shedder for a method key.

    ``engine`` selects the array/legacy implementation for CRR, BM2 and UDS;
    ``num_sources`` switches CRR/UDS to sampled betweenness.  ``sparsify`` /
    ``sparsify_beta`` configure BM2's EDCS candidate pruning (``bm2``
    defaults to ``"off"``, ``bm2-sparse`` to ``"edcs"``; setting them on any
    other method is an error).  ``weighted`` swaps CRR/BM2 for their
    probability-aware :mod:`repro.uncertain` variants (array engine only;
    other methods have no weighted form).  Raises :class:`ServiceError`
    for unknown keys.
    """
    method = method.lower()
    if method not in ("bm2", "bm2-sparse") and (
        sparsify is not None or sparsify_beta is not None
    ):
        raise ServiceError(f"sparsify options require bm2/bm2-sparse, got {method!r}")
    if weighted:
        if engine != "array":
            raise ServiceError(
                f"weighted shedding requires the array engine, got {engine!r}"
            )
        if method == "crr":
            return WeightedCRRShedder(seed=seed, num_betweenness_sources=num_sources)
        if method == "bm2":
            return WeightedBM2Shedder(
                seed=seed,
                sparsify=sparsify if sparsify is not None else "off",
                sparsify_beta=sparsify_beta,
            )
        if method == "bm2-sparse":
            return WeightedBM2Shedder(
                seed=seed,
                sparsify=sparsify if sparsify is not None else "edcs",
                sparsify_beta=sparsify_beta,
            )
        if method in KNOWN_METHODS:
            raise ServiceError(f"method {method!r} has no weighted variant")
        raise ServiceError(
            f"unknown method {method!r} (expected one of {', '.join(KNOWN_METHODS)})"
        )
    if method == "crr":
        return CRRShedder(seed=seed, engine=engine, num_betweenness_sources=num_sources)
    if method == "bm2":
        return BM2Shedder(
            seed=seed,
            engine=engine,
            sparsify=sparsify if sparsify is not None else "off",
            sparsify_beta=sparsify_beta,
        )
    if method == "bm2-sparse":
        # The degradation ladder's middle rung: EDCS-pruned Phase 2.
        return BM2Shedder(
            seed=seed,
            engine=engine,
            sparsify=sparsify if sparsify is not None else "edcs",
            sparsify_beta=sparsify_beta,
        )
    if method == "uds":
        return UDSSummarizer(
            seed=seed, engine=engine, num_betweenness_sources=num_sources
        )
    if method == "random":
        return RandomShedder(seed=seed)
    if method == "degree-proportional":
        return DegreeProportionalShedder(seed=seed)
    raise ServiceError(
        f"unknown method {method!r} (expected one of {', '.join(KNOWN_METHODS)})"
    )


class JobStatus(str, Enum):
    """Lifecycle of one service job."""

    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    REJECTED = "rejected"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def is_terminal(self) -> bool:
        return self in (
            JobStatus.COMPLETED,
            JobStatus.REJECTED,
            JobStatus.FAILED,
            JobStatus.CANCELLED,
        )


@dataclass
class ReductionRequest:
    """One shedding request with its per-request budgets.

    Exactly one of ``graph`` (an in-memory :class:`Graph`) or
    ``graph_ref`` must be set.  A ``graph_ref`` is either
    ``"dataset:<name>[:<scale>]"`` (registry surrogate) or
    ``"file:<path>"`` (SNAP-style edge list).

    Budgets:
        deadline_seconds: total wall-clock budget (queue + execute);
            under pressure the method degrades down the ladder rather
            than missing the deadline outright.
        max_resident_edges: per-request cap on how many edges the job may
            hold resident; larger inputs run the low-footprint path.
        priority: higher runs first; FIFO within a priority level.
    """

    p: float
    method: str = "bm2"
    graph: Optional[Graph] = None
    graph_ref: Optional[str] = None
    seed: int = 0
    engine: str = "array"
    num_sources: Optional[int] = None
    weighted: bool = False
    priority: int = 0
    deadline_seconds: Optional[float] = None
    max_resident_edges: Optional[int] = None
    label: str = ""

    def validate(self) -> None:
        """Raise :class:`ServiceError` for an unusable request."""
        if (self.graph is None) == (self.graph_ref is None):
            raise ServiceError("exactly one of graph / graph_ref must be set")
        if not 0.0 < float(self.p) < 1.0:
            raise ServiceError(f"p must be in (0, 1), got {self.p!r}")
        if self.method.lower() not in KNOWN_METHODS:
            raise ServiceError(f"unknown method {self.method!r}")
        if self.weighted:
            if self.method.lower() not in ("crr", "bm2", "bm2-sparse"):
                raise ServiceError(
                    f"method {self.method!r} has no weighted variant"
                )
            if self.engine != "array":
                raise ServiceError(
                    f"weighted shedding requires the array engine, got {self.engine!r}"
                )
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ServiceError(f"deadline_seconds must be >= 0, got {self.deadline_seconds}")
        if self.max_resident_edges is not None and self.max_resident_edges <= 0:
            raise ServiceError(
                f"max_resident_edges must be positive, got {self.max_resident_edges}"
            )

    def describe(self) -> str:
        where = self.graph_ref or "<inline graph>"
        tag = f" [{self.label}]" if self.label else ""
        flavour = " weighted" if self.weighted else ""
        return f"{self.method}{flavour} p={self.p:g} seed={self.seed} on {where}{tag}"


@dataclass
class ServiceResult:
    """Terminal outcome of one job, with serving metadata.

    ``reduction`` is the plain algorithm-level result (``None`` for
    rejected/failed/cancelled jobs); ``degradation`` records each ladder
    step taken (e.g. ``"crr->bm2: deadline"``), which is *also* mirrored
    into ``reduction.stats["degradation"]`` so the artifact itself
    carries the provenance.
    """

    request: ReductionRequest
    status: JobStatus
    reduction: Optional[ReductionResult] = None
    method_used: str = ""
    cache_hit: Optional[str] = None
    degraded: bool = False
    degradation: List[str] = field(default_factory=list)
    queue_seconds: float = 0.0
    execute_seconds: float = 0.0
    total_seconds: float = 0.0
    error: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        """One human-readable line for CLI output."""
        head = f"[{self.status.value}] {self.request.describe()}"
        if self.status is not JobStatus.COMPLETED or self.reduction is None:
            return f"{head}: {self.error or 'no result'}"
        parts = [self.reduction.summary()]
        if self.cache_hit:
            parts.append(f"cache={self.cache_hit}")
        if self.degraded:
            parts.append(f"degraded[{'; '.join(self.degradation)}]")
        return f"{head}: " + " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable rendering (used by the CLI's ``--json``)."""
        payload: Dict[str, Any] = {
            "status": self.status.value,
            "request": {
                "method": self.request.method,
                "p": self.request.p,
                "seed": self.request.seed,
                "weighted": self.request.weighted,
                "graph_ref": self.request.graph_ref,
                "priority": self.request.priority,
                "deadline_seconds": self.request.deadline_seconds,
                "label": self.request.label,
            },
            "method_used": self.method_used,
            "cache_hit": self.cache_hit,
            "degraded": self.degraded,
            "degradation": list(self.degradation),
            "queue_seconds": self.queue_seconds,
            "execute_seconds": self.execute_seconds,
            "total_seconds": self.total_seconds,
            "error": self.error,
            "metadata": dict(self.metadata),
        }
        if self.reduction is not None:
            payload["reduction"] = {
                "method": self.reduction.method,
                "p": self.reduction.p,
                "original_edges": self.reduction.original.num_edges,
                "reduced_edges": self.reduction.reduced.num_edges,
                "achieved_ratio": self.reduction.achieved_ratio,
                "delta": self.reduction.delta,
                "average_delta": self.reduction.average_delta,
                "elapsed_seconds": self.reduction.elapsed_seconds,
            }
        return payload


class JobHandle:
    """Future-like handle for a submitted request.

    ``result()`` blocks until the job reaches a terminal state.
    ``cancel()`` withdraws a job that has not started running; the
    scheduler skips it and the handle resolves with
    :attr:`JobStatus.CANCELLED`.
    """

    def __init__(self, request: ReductionRequest) -> None:
        self.request = request
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._result: Optional[ServiceResult] = None
        self._status = JobStatus.PENDING
        self._cancel_requested = False

    @property
    def status(self) -> JobStatus:
        return self._status

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> ServiceResult:
        """Wait for the terminal :class:`ServiceResult`."""
        if not self._done.wait(timeout):
            raise ServiceError(
                f"job did not complete within {timeout}s ({self.request.describe()})"
            )
        assert self._result is not None
        return self._result

    def cancel(self) -> bool:
        """Request cancellation; returns ``False`` if already terminal."""
        with self._lock:
            if self._done.is_set():
                return False
            self._cancel_requested = True
            return True

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    # -- service-side hooks -------------------------------------------------

    def _mark(self, status: JobStatus) -> None:
        with self._lock:
            if not self._done.is_set():
                self._status = status

    def _complete(self, result: ServiceResult) -> None:
        with self._lock:
            if self._done.is_set():
                return
            self._result = result
            self._status = result.status
            self._done.set()
