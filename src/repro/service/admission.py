"""Admission control: budgets, a runtime cost model, graceful degradation.

The service promises two things under load (the paper's resource-
constraints premise, lifted to the serving layer):

* it never lets concurrent jobs hold more resident edges than the global
  budget — :class:`BudgetLedger` is a blocking ledger the workers check
  edges in and out of, so over-budget jobs *wait* instead of OOMing the
  pool;
* a request that cannot meet its deadline with the asked-for method is
  *degraded* down the quality ladder (CRR → BM2 → sparsified BM2 →
  random, from :mod:`repro.core.progressive`) rather than rejected — a
  cheaper, still valid reduction with the degradation recorded in the
  result metadata.

:class:`CostModel` supplies the runtime estimates the deadline check
needs: per-method coefficients over a crude work measure (``n·m`` for
betweenness-ranked methods, ``m`` for the linear ones), updated by EWMA
from observed runs so the model calibrates itself to the host.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.progressive import degrade_method
from repro.errors import AdmissionError, ServiceError
from repro.graph.graph import Graph
from repro.service.request import ReductionRequest

__all__ = ["AdmissionController", "AdmissionDecision", "BudgetLedger", "CostModel"]


class CostModel:
    """Conservative per-method runtime estimates, self-calibrating.

    ``estimate`` is intentionally pessimistic out of the box (admission
    would rather degrade a borderline request than blow a deadline); each
    observed run updates the method's coefficient with an exponential
    moving average, so a long-lived service converges on the host's real
    constants.
    """

    #: Initial seconds-per-work-unit coefficients.  Work units: ``n·m``
    #: for the betweenness-ranked methods (Brandes dominates), ``m`` for
    #: the linear-pass ones.
    DEFAULT_COEFFICIENTS: Dict[str, float] = {
        "crr": 2e-6,
        "uds": 3e-6,
        "bm2": 4e-6,
        # EDCS-sparsified BM2: Phase 2 repairs a bounded-degree candidate
        # subgraph, so the per-edge constant sits below plain bm2's.
        "bm2-sparse": 2.5e-6,
        "random": 2e-7,
        "degree-proportional": 4e-7,
    }
    #: Methods whose cost scales with ``n·m`` rather than ``m``.
    QUADRATIC_METHODS = frozenset({"crr", "uds"})

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ServiceError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._coefficients = dict(self.DEFAULT_COEFFICIENTS)
        self._lock = threading.Lock()

    def work_units(self, method: str, num_nodes: int, num_edges: int) -> float:
        method = method.lower()
        if method in self.QUADRATIC_METHODS:
            return float(max(1, num_nodes) * max(1, num_edges))
        return float(max(1, num_edges))

    def estimate(self, method: str, num_nodes: int, num_edges: int) -> float:
        """Estimated wall-clock seconds for one reduction."""
        method = method.lower()
        with self._lock:
            coefficient = self._coefficients.get(
                method, max(self._coefficients.values())
            )
        return coefficient * self.work_units(method, num_nodes, num_edges) + 1e-4

    def observe(
        self, method: str, num_nodes: int, num_edges: int, seconds: float
    ) -> None:
        """Fold one observed runtime into the method's coefficient."""
        method = method.lower()
        units = self.work_units(method, num_nodes, num_edges)
        observed = max(seconds, 1e-6) / units
        with self._lock:
            current = self._coefficients.get(method, observed)
            self._coefficients[method] = (
                (1.0 - self.alpha) * current + self.alpha * observed
            )

    def coefficient(self, method: str) -> float:
        with self._lock:
            return self._coefficients.get(
                method.lower(), max(self._coefficients.values())
            )


class BudgetLedger:
    """Blocking ledger of resident edges across concurrently running jobs.

    Workers :meth:`acquire` their graph's edge count before executing and
    :meth:`release` it after; an acquisition that would exceed the global
    capacity blocks until running jobs drain — that *is* the "queued
    against the budget" behaviour the service promises.  Requests larger
    than the whole capacity are the admission controller's problem (it
    degrades them and clamps the charge), never the ledger's.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ServiceError(f"budget capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._in_use = 0
        self._waits = 0
        self._condition = threading.Condition()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def waits(self) -> int:
        """How many acquisitions had to block for capacity."""
        return self._waits

    def charge_for(self, num_edges: int) -> int:
        """The ledger charge for a graph: its edges, clamped to capacity."""
        return min(int(num_edges), self.capacity)

    def acquire(self, amount: int, timeout: Optional[float] = None) -> None:
        """Block until ``amount`` edges of budget are free, then take them."""
        if amount > self.capacity:
            raise AdmissionError(
                f"cannot acquire {amount} edges from a {self.capacity}-edge budget"
            )
        with self._condition:
            if self._in_use + amount > self.capacity:
                self._waits += 1
            deadline_ok = self._condition.wait_for(
                lambda: self._in_use + amount <= self.capacity, timeout
            )
            if not deadline_ok:
                raise AdmissionError(
                    f"budget acquisition of {amount} edges timed out after {timeout}s"
                )
            self._in_use += amount

    def try_acquire(self, amount: int) -> bool:
        """Take ``amount`` edges of budget iff they are free *right now*.

        Non-blocking :meth:`acquire` for callers that degrade instead of
        waiting — the streaming sessions shed inserts when a resize cannot
        be funded, rather than stalling their drain loop on the condition
        variable.  Returns whether the budget was taken.
        """
        if amount > self.capacity:
            return False
        with self._condition:
            if self._in_use + amount > self.capacity:
                return False
            self._in_use += amount
            return True

    def release(self, amount: int) -> None:
        with self._condition:
            self._in_use -= amount
            if self._in_use < 0:
                self._in_use = 0
            self._condition.notify_all()

    @contextmanager
    def lease(self, amount: int, timeout: Optional[float] = None) -> Iterator[None]:
        """``with`` wrapper pairing :meth:`acquire` and :meth:`release`."""
        self.acquire(amount, timeout=timeout)
        try:
            yield
        finally:
            self.release(amount)


@dataclass
class AdmissionDecision:
    """Outcome of admitting one request.

    ``action`` is ``"admit"`` (run as asked), ``"degrade"`` (run
    ``method`` instead of what was asked, for the listed reasons), or
    ``"reject"``.  ``oversize`` marks jobs whose input exceeds the global
    edge budget; their ledger charge is clamped to capacity so they can
    still run — on the cheapest method — without starving the pool.
    """

    action: str
    method: str
    reasons: List[str] = field(default_factory=list)
    oversize: bool = False
    estimated_seconds: float = 0.0

    @property
    def admitted(self) -> bool:
        return self.action in ("admit", "degrade")

    @property
    def degraded(self) -> bool:
        return self.action == "degrade"


class AdmissionController:
    """Decides admit / degrade / reject for each incoming request.

    Checks, in order: queue backpressure (reject), per-request and global
    resident-edge budgets (degrade to the cheapest method), then the
    deadline against :class:`CostModel` estimates (walk the degradation
    ladder until the estimate fits).  ``safety_factor`` pads estimates so
    borderline requests degrade instead of gambling.
    """

    def __init__(
        self,
        capacity_edges: int,
        cost_model: Optional[CostModel] = None,
        max_queue_depth: Optional[int] = None,
        safety_factor: float = 1.5,
    ) -> None:
        if safety_factor < 1.0:
            raise ServiceError(f"safety_factor must be >= 1, got {safety_factor}")
        self.capacity_edges = capacity_edges
        self.cost_model = cost_model or CostModel()
        self.max_queue_depth = max_queue_depth
        self.safety_factor = safety_factor

    def _cheapest(self, method: str) -> str:
        """Walk the ladder to its terminal (lowest-footprint) rung."""
        current = method
        while True:
            cheaper = degrade_method(current)
            if cheaper is None:
                return current
            current = cheaper

    def decide(
        self, request: ReductionRequest, graph: Graph, queue_depth: int = 0
    ) -> AdmissionDecision:
        """Admission decision for ``request`` over its resolved ``graph``."""
        method = request.method.lower()
        reasons: List[str] = []
        oversize = False

        if self.max_queue_depth is not None and queue_depth >= self.max_queue_depth:
            return AdmissionDecision(
                action="reject",
                method=method,
                reasons=[
                    f"queue depth {queue_depth} at limit {self.max_queue_depth}"
                ],
            )

        n, m = graph.num_nodes, graph.num_edges
        cap = request.max_resident_edges
        if cap is not None and m > cap:
            cheapest = self._cheapest(method)
            if cheapest != method:
                reasons.append(
                    f"{method}->{cheapest}: input {m} edges exceeds the request's "
                    f"{cap}-edge cap"
                )
                method = cheapest
        if m > self.capacity_edges:
            oversize = True
            cheapest = self._cheapest(method)
            if cheapest != method:
                reasons.append(
                    f"{method}->{cheapest}: input {m} edges exceeds the global "
                    f"{self.capacity_edges}-edge budget"
                )
                method = cheapest

        estimate = self.cost_model.estimate(method, n, m)
        if request.deadline_seconds is not None:
            while estimate * self.safety_factor > request.deadline_seconds:
                cheaper = degrade_method(method)
                if cheaper is None:
                    reasons.append(
                        f"{method}: estimated {estimate:.3f}s still over the "
                        f"{request.deadline_seconds:.3f}s deadline; best effort"
                    )
                    break
                reasons.append(
                    f"{method}->{cheaper}: estimated {estimate:.3f}s over the "
                    f"{request.deadline_seconds:.3f}s deadline"
                )
                method = cheaper
                estimate = self.cost_model.estimate(method, n, m)

        action = "admit" if method == request.method.lower() else "degrade"
        return AdmissionDecision(
            action=action,
            method=method,
            reasons=reasons,
            oversize=oversize,
            estimated_seconds=estimate,
        )
