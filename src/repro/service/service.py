"""`SheddingService` — the budgeted front door for reduction requests.

Submission pipeline (all in-process):

1. **resolve** the request's graph (inline object, dataset ref, or edge-
   list file; refs are memoised per service);
2. **cache check** against the content-addressed
   :class:`~repro.service.store.ArtifactStore` — a hit resolves the
   handle immediately without touching the queue or the algorithms;
3. **admission** (:class:`~repro.service.admission.AdmissionController`)
   — reject on queue backpressure, degrade under budget/deadline
   pressure, admit otherwise;
4. **schedule**: the job enters the priority queue; a worker leases the
   graph's edge charge from the global
   :class:`~repro.service.admission.BudgetLedger` (blocking while the
   pool is saturated — that's the queueing behaviour), runs the
   reduction (in-thread or via the process pool), stores the artifact,
   feeds the cost model, and resolves the :class:`JobHandle`.

Determinism: a job's output is a pure function of its request — fresh
shedder per job, seed routed from the request — so any submission order
and any worker interleaving produce reductions bit-identical to serial
inline calls (property-tested).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.base import ReductionResult
from repro.core.progressive import degrade_method, rescore_result
from repro.errors import ServiceError
from repro.graph.graph import Graph
from repro.service.admission import AdmissionController, BudgetLedger, CostModel
from repro.service.metrics import MetricsRegistry
from repro.service.request import (
    JobHandle,
    JobStatus,
    ReductionRequest,
    ServiceResult,
    make_shedder,
)
from repro.service.scheduler import (
    SCHEDULER_MODES,
    JobTimeoutError,
    ProcessEngine,
    QueuedJob,
    Scheduler,
)
from repro.service.store import ArtifactStore

__all__ = ["SheddingService", "resolve_graph_ref"]

#: Default global resident-edge budget: roomy for laptop surrogates,
#: small enough that full-size com-livejournal jobs degrade.
DEFAULT_EDGE_BUDGET = 5_000_000


class SheddingService:
    """In-process shedding service: budgets, scheduling, artifact cache.

    Use as a context manager or call :meth:`shutdown` explicitly::

        with SheddingService(num_workers=2, mode="thread") as service:
            handle = service.submit(ReductionRequest(graph=g, method="crr", p=0.5))
            result = handle.result(timeout=60)
    """

    def __init__(
        self,
        max_resident_edges: int = DEFAULT_EDGE_BUDGET,
        max_queue_depth: Optional[int] = 1024,
        num_workers: int = 2,
        mode: str = "thread",
        store: Optional[ArtifactStore] = None,
        cache_dir: Optional[str] = None,
        cache_bytes: Optional[int] = None,
        cost_model: Optional[CostModel] = None,
        safety_factor: float = 1.5,
        graph_loader: Optional[Callable[[str, int], Graph]] = None,
        num_shards: Optional[int] = None,
    ) -> None:
        if mode not in SCHEDULER_MODES:
            raise ServiceError(f"mode must be one of {SCHEDULER_MODES}, got {mode!r}")
        self.mode = mode
        #: shard count for ``mode="sharded"`` (defaults to the worker count).
        self.num_shards = num_shards if num_shards is not None else max(num_workers, 1)
        if self.num_shards < 1:
            raise ServiceError(f"num_shards must be >= 1, got {self.num_shards}")
        self.store = store if store is not None else ArtifactStore(
            byte_budget=cache_bytes, persist_dir=cache_dir
        )
        self.metrics = MetricsRegistry()
        self.ledger = BudgetLedger(max_resident_edges)
        self.cost_model = cost_model or CostModel()
        self.admission = AdmissionController(
            capacity_edges=max_resident_edges,
            cost_model=self.cost_model,
            max_queue_depth=max_queue_depth,
            safety_factor=safety_factor,
        )
        self.scheduler = Scheduler(
            runner=self._run_job, num_workers=num_workers, inline=(mode == "inline")
        )
        self._engine = ProcessEngine(num_workers) if mode == "process" else None
        self._graph_loader = graph_loader or resolve_graph_ref
        self._graph_cache: Dict[Any, Graph] = {}
        self._graph_cache_lock = threading.Lock()
        self._closed = False
        self.metrics.register_gauge("queue_depth", lambda: self.scheduler.queue_depth)
        self.metrics.register_gauge("resident_edges", lambda: self.ledger.in_use)
        self.metrics.register_gauge("cache_artifacts", lambda: len(self.store))
        self.metrics.register_gauge("cache_bytes", lambda: self.store.resident_bytes)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, request: ReductionRequest) -> JobHandle:
        """Submit one request; always returns a handle (rejections too)."""
        if self._closed:
            raise ServiceError("service is shut down")
        handle = JobHandle(request)
        submitted_at = time.perf_counter()
        self.metrics.counter("requests_submitted").inc()
        try:
            request.validate()
            graph = self._resolve_graph(request)
        except ServiceError as error:
            self._reject(handle, submitted_at, str(error))
            return handle
        except Exception as error:  # loader/file errors
            self._reject(handle, submitted_at, f"could not resolve graph: {error}")
            return handle

        key = self.store.key_for(
            graph,
            request.method,
            request.p,
            request.seed,
            engine=request.engine,
            variant=self._variant(request, request.method),
        )
        cached, hit = self.store.get_with_tier(key, graph)
        if cached is not None:
            self.metrics.counter(f"cache_hits_{hit}").inc()
            handle._complete(
                ServiceResult(
                    request=request,
                    status=JobStatus.COMPLETED,
                    reduction=cached,
                    method_used=request.method.lower(),
                    cache_hit=hit,
                    total_seconds=time.perf_counter() - submitted_at,
                )
            )
            return handle

        decision = self.admission.decide(
            request, graph, queue_depth=self.scheduler.queue_depth
        )
        if not decision.admitted:
            self.metrics.counter("admission_rejected").inc()
            self._reject(
                handle, submitted_at, "; ".join(decision.reasons) or "rejected"
            )
            return handle
        if decision.degraded:
            self.metrics.counter("admission_degraded").inc()
        self.metrics.counter("admitted").inc()

        job = QueuedJob(
            request=request,
            graph=graph,
            method=decision.method,
            handle=handle,
            sequence=self.scheduler.next_sequence(),
            enqueued_at=submitted_at,
            metadata={"decision": decision, "store_key": key},
        )
        self.scheduler.submit(job)
        return handle

    def submit_all(self, requests: List[ReductionRequest]) -> List[JobHandle]:
        """Submit a batch, preserving order of the returned handles."""
        return [self.submit(request) for request in requests]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Wait for every queued/running job to reach a terminal state."""
        return self.scheduler.drain(timeout=timeout)

    def shutdown(self, wait: bool = True) -> None:
        """Drain (optionally) and release workers and process pools."""
        if self._closed:
            return
        self.scheduler.shutdown(wait=wait)
        if self._engine is not None:
            self._engine.close()
        self._closed = True

    def __enter__(self) -> "SheddingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Full observability dict: metrics, store stats, budget state."""
        snapshot = self.metrics.snapshot()
        snapshot["store"] = dict(self.store.stats)
        snapshot["budget"] = {
            "capacity_edges": self.ledger.capacity,
            "in_use_edges": self.ledger.in_use,
            "waits": self.ledger.waits,
        }
        if self._engine is not None:
            snapshot["process_pool"] = {"abandoned_tasks": self._engine.abandoned_tasks}
        return snapshot

    # ------------------------------------------------------------------
    # Job execution (worker side)
    # ------------------------------------------------------------------

    def _run_job(self, job: QueuedJob) -> None:
        request, handle = job.request, job.handle
        started = time.perf_counter()
        queue_seconds = started - job.enqueued_at
        if job.metadata.pop("cancelled_in_queue", False) or handle.cancel_requested:
            self.metrics.counter("cancelled").inc()
            handle._complete(
                ServiceResult(
                    request=request,
                    status=JobStatus.CANCELLED,
                    queue_seconds=queue_seconds,
                    total_seconds=queue_seconds,
                    error="cancelled before execution",
                )
            )
            return

        key = job.metadata["store_key"]
        # Another job may have produced the same artifact while this one
        # sat in the queue.  The artifact lives under the original
        # (undegraded) request key, so the hit is the requested method.
        cached, hit = self.store.get_with_tier(key, job.graph)
        if cached is not None:
            self.metrics.counter(f"cache_hits_{hit}").inc()
            handle._complete(
                ServiceResult(
                    request=request,
                    status=JobStatus.COMPLETED,
                    reduction=cached,
                    method_used=request.method.lower(),
                    cache_hit=hit,
                    queue_seconds=queue_seconds,
                    total_seconds=time.perf_counter() - job.enqueued_at,
                )
            )
            return

        method, degradation = self._apply_queue_pressure(job, queue_seconds)
        charge = self.ledger.charge_for(job.graph.num_edges)
        try:
            self.ledger.acquire(charge)
        except ServiceError as error:
            self._fail(handle, request, queue_seconds, str(error))
            return
        try:
            self.store.count_compute()
            # _execute may degrade further (process-pool timeout fallback);
            # `method` is the method that actually produced `result`, and
            # the cache key below must follow it or a random-shed result
            # would be served as a future CRR/BM2 hit.
            result, metadata, method = self._execute(job, method, degradation)
        except Exception as error:
            self.metrics.counter("failed").inc()
            self._fail(handle, request, queue_seconds, f"{type(error).__name__}: {error}")
            return
        finally:
            self.ledger.release(charge)

        execute_seconds = time.perf_counter() - started
        total = time.perf_counter() - job.enqueued_at
        # The reduction succeeded; bookkeeping failures (a full disk in
        # store.put, a broken metrics gauge) must not lose the result or
        # kill the worker thread.
        try:
            self.cost_model.observe(
                method,
                job.graph.num_nodes,
                job.graph.num_edges,
                execute_seconds,
            )
            if degradation:
                self.metrics.counter("degraded_runs").inc()
            self.metrics.counter("jobs_executed").inc()
            self.metrics.histogram("queue_seconds").observe(queue_seconds)
            self.metrics.histogram("execute_seconds").observe(execute_seconds)
            self.metrics.histogram("total_seconds").observe(total)
            if (
                request.deadline_seconds is not None
                and total > request.deadline_seconds
            ):
                metadata["deadline_exceeded"] = True
                self.metrics.counter("deadline_overruns").inc()
            self.store.put(
                key if not degradation else self._degraded_key(job, method), result
            )
        except Exception as error:
            metadata["bookkeeping_error"] = f"{type(error).__name__}: {error}"
        handle._complete(
            ServiceResult(
                request=request,
                status=JobStatus.COMPLETED,
                reduction=result,
                method_used=method,
                degraded=bool(degradation),
                degradation=degradation,
                queue_seconds=queue_seconds,
                execute_seconds=execute_seconds,
                total_seconds=total,
                metadata=metadata,
            )
        )

    def _apply_queue_pressure(
        self, job: QueuedJob, queue_seconds: float
    ) -> (str, List[str]):
        """Re-check the deadline after queueing; degrade further if needed."""
        decision = job.metadata["decision"]
        method = decision.method
        degradation = list(decision.reasons)
        deadline = job.request.deadline_seconds
        if deadline is None:
            return method, degradation
        remaining = deadline - queue_seconds
        graph = job.graph
        while True:
            estimate = self.cost_model.estimate(
                method, graph.num_nodes, graph.num_edges
            )
            if estimate * self.admission.safety_factor <= remaining:
                break
            cheaper = degrade_method(method)
            if cheaper is None:
                break
            degradation.append(
                f"{method}->{cheaper}: {remaining:.3f}s left after "
                f"{queue_seconds:.3f}s in queue"
            )
            method = cheaper
        return method, degradation

    def _execute(
        self, job: QueuedJob, method: str, degradation: List[str]
    ) -> (ReductionResult, Dict[str, Any], str):
        """Run the reduction (process pool or in-thread) with fallback.

        Returns ``(result, metadata, method)`` where ``method`` is the
        method that actually ran — it differs from the argument when the
        process-pool timeout fallback kicked in, and the caller must key
        the artifact cache and report ``method_used`` from it.
        """
        request, graph = job.request, job.graph
        metadata: Dict[str, Any] = {"mode": self.mode}
        decision = job.metadata["decision"]
        if decision.oversize:
            metadata["oversize"] = True
        timeout = None
        if request.deadline_seconds is not None:
            timeout = max(request.deadline_seconds - (time.perf_counter() - job.enqueued_at), 0.05)

        # Degraded fallbacks may land on a method with no weighted variant
        # (e.g. random); those run weight-blind — the trail says why.
        runs_weighted = request.weighted and method in ("crr", "bm2", "bm2-sparse")

        if self._engine is not None:
            try:
                result = self._engine.execute(
                    graph,
                    method,
                    request.p,
                    request.seed,
                    engine=request.engine,
                    num_sources=request.num_sources,
                    timeout=timeout,
                    weighted=runs_weighted,
                )
            except JobTimeoutError:
                # Terminal fallback: a cheap uniform reduction beats no
                # result at all; the trail records the timeout.
                self.metrics.counter("timeouts").inc()
                metadata["timed_out"] = True
                fallback = "random"
                degradation.append(
                    f"{method}->{fallback}: process-pool execution timed out"
                )
                method = fallback
                result = make_shedder(fallback, seed=request.seed).reduce(
                    graph, request.p
                )
        elif self._runs_sharded(method, request):
            from repro.shard import ShardedShedder

            shedder = ShardedShedder(
                method="bm2" if method == "bm2-sparse" else method,
                num_shards=self.num_shards,
                num_workers=self.scheduler.num_workers,
                seed=request.seed,
                num_betweenness_sources=request.num_sources,
                sparsify="edcs" if method == "bm2-sparse" else "off",
            )
            metadata["num_shards"] = self.num_shards
            result = shedder.reduce(graph, request.p)
        else:
            shedder = make_shedder(
                method,
                seed=request.seed,
                engine=request.engine if method in ("crr", "bm2") else "array",
                num_sources=request.num_sources,
                weighted=runs_weighted,
            )
            result = shedder.reduce(graph, request.p)

        if degradation:
            # Stamp the provenance into the artifact itself (satisfies
            # "degradation recorded in ReductionResult metadata") without
            # recomputing Δ — rescore_result reuses the exact value.
            stats = dict(result.stats)
            stats["degraded_from"] = request.method.lower()
            stats["degradation"] = list(degradation)
            stats["service_method"] = method
            result = rescore_result(
                method=result.method,
                original=graph,
                reduced=result.reduced,
                p=result.p,
                elapsed_seconds=result.elapsed_seconds,
                stats=stats,
                delta=result.delta,
            )
        return result, metadata, method

    def _degraded_key(self, job: QueuedJob, method: str):
        """Degraded runs are cached under the method that actually ran."""
        return self.store.key_for(
            job.graph,
            method,
            job.request.p,
            job.request.seed,
            engine=job.request.engine,
            variant=self._variant(job.request, method),
        )

    def _runs_sharded(self, method: str, request: ReductionRequest) -> bool:
        """Whether this method executes through the sharded runner here.

        Only the paper kernels shard, and only their array engines — a
        ``legacy``-engine request is an explicit ask for the scalar oracle.
        """
        return (
            self.mode == "sharded"
            and method in ("crr", "bm2", "bm2-sparse")
            and request.engine == "array"
            # The sharded runner is weight-blind; weighted jobs run the
            # whole-graph probability-aware engines instead.
            and not request.weighted
        )

    def _variant(self, request: ReductionRequest, method: str) -> str:
        """Cache-key variant for ``method`` as this service would run it.

        Sharded execution produces a different (boundary-reconciled)
        artifact than the whole-graph engines, so its results must not be
        served from — or poison — the unsharded cache entries.  Keyed per
        executed method because degraded fallbacks run unsharded.
        """
        variant = _variant_of(request)
        if self._runs_sharded(method, request):
            tag = f"shards={self.num_shards}"
            variant = f"{variant},{tag}" if variant else tag
        return variant

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _reject(self, handle: JobHandle, submitted_at: float, reason: str) -> None:
        self.metrics.counter("rejected").inc()
        handle._complete(
            ServiceResult(
                request=handle.request,
                status=JobStatus.REJECTED,
                error=reason,
                total_seconds=time.perf_counter() - submitted_at,
            )
        )

    def _fail(
        self,
        handle: JobHandle,
        request: ReductionRequest,
        queue_seconds: float,
        reason: str,
    ) -> None:
        handle._complete(
            ServiceResult(
                request=request,
                status=JobStatus.FAILED,
                error=reason,
                queue_seconds=queue_seconds,
            )
        )

    def _resolve_graph(self, request: ReductionRequest) -> Graph:
        if request.graph is not None:
            return request.graph
        ref = request.graph_ref
        assert ref is not None
        cache_token = (ref, request.seed)
        with self._graph_cache_lock:
            cached = self._graph_cache.get(cache_token)
        if cached is not None:
            return cached
        graph = self._graph_loader(ref, request.seed)
        with self._graph_cache_lock:
            self._graph_cache[cache_token] = graph
        return graph


def _variant_of(request: ReductionRequest) -> str:
    """Extra cache-key discriminators beyond (method, p, seed, engine)."""
    tags = []
    if request.num_sources is not None:
        tags.append(f"sources={request.num_sources}")
    if request.weighted:
        # Weight-aware and weight-blind runs on the same weighted graph
        # share digest/method/p/seed — the tag keeps their artifacts apart.
        tags.append("weighted")
    return ",".join(tags)


def resolve_graph_ref(ref: str, seed: int) -> Graph:
    """Resolve ``dataset:<name>[:<scale>]`` and ``file:<path>`` refs.

    The one graph-ref grammar for every serving surface: the one-shot
    service and the streaming sessions (:mod:`repro.sessions`) both load
    through here, so a ref means the same graph everywhere.
    """
    kind, _, rest = ref.partition(":")
    if kind == "dataset" and rest:
        name, _, scale_text = rest.partition(":")
        from repro.datasets.registry import load_dataset

        scale = float(scale_text) if scale_text else None
        return load_dataset(name, scale=scale, seed=seed)
    if kind == "file" and rest:
        from repro.graph.io import read_edge_list

        return read_edge_list(rest)
    raise ServiceError(
        f"unknown graph ref {ref!r} (expected 'dataset:<name>[:<scale>]' or 'file:<path>')"
    )
