"""Budgeted shedding service: admission control, scheduling, artifact cache.

:mod:`repro.service` wraps the shedding algorithms in an in-process
serving layer.  Clients submit :class:`ReductionRequest` objects to a
:class:`SheddingService` and get back :class:`JobHandle` futures; the
service resolves each one through a content-addressed
:class:`ArtifactStore` (memory LRU + optional on-disk persistence, so
warm restarts hit the cache), an :class:`AdmissionController` that
enforces global and per-request resident-edge budgets and degrades
methods down the CRR → BM2 → random ladder under deadline pressure, and
a :class:`Scheduler` with inline / thread / process execution modes.
Results are bit-identical to serial inline runs regardless of
concurrency, because every job routes its own seed into a fresh shedder.
"""

from repro.service.admission import (
    AdmissionController,
    AdmissionDecision,
    BudgetLedger,
    CostModel,
)
from repro.service.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    OP_LATENCY_BOUNDS,
    latency_us_summary,
)
from repro.service.request import (
    KNOWN_METHODS,
    JobHandle,
    JobStatus,
    ReductionRequest,
    ServiceResult,
    make_shedder,
)
from repro.service.scheduler import (
    SCHEDULER_MODES,
    JobTimeoutError,
    ProcessEngine,
    QueuedJob,
    Scheduler,
)
from repro.service.service import SheddingService, resolve_graph_ref
from repro.service.store import (
    ArtifactKey,
    ArtifactStore,
    graph_digest,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "ArtifactKey",
    "ArtifactStore",
    "BudgetLedger",
    "CostModel",
    "Counter",
    "Histogram",
    "JobHandle",
    "JobStatus",
    "JobTimeoutError",
    "KNOWN_METHODS",
    "MetricsRegistry",
    "OP_LATENCY_BOUNDS",
    "ProcessEngine",
    "QueuedJob",
    "ReductionRequest",
    "SCHEDULER_MODES",
    "Scheduler",
    "ServiceResult",
    "SheddingService",
    "graph_digest",
    "latency_us_summary",
    "make_shedder",
    "resolve_graph_ref",
]
