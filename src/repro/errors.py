"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class at an API boundary.  More specific
subclasses exist for the major subsystems (graph substrate, reduction
algorithms, datasets, benchmarks) so that tests and downstream users can
assert on precise failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "SelfLoopError",
    "ReductionError",
    "InvalidRatioError",
    "DatasetError",
    "EmbeddingError",
    "TaskError",
    "BenchError",
    "ServiceError",
    "AdmissionError",
    "SessionError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphError(ReproError):
    """A structural problem with a graph or a graph operation."""


class NodeNotFoundError(GraphError, KeyError):
    """An operation referenced a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An operation referenced an edge that is not in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class SelfLoopError(GraphError, ValueError):
    """Self-loops are not allowed in the simple undirected graphs we model."""

    def __init__(self, node: object) -> None:
        super().__init__(f"self-loop on node {node!r} is not allowed")
        self.node = node


class ReductionError(ReproError):
    """An edge-shedding / summarization algorithm could not proceed."""


class InvalidRatioError(ReductionError, ValueError):
    """The edge preservation ratio ``p`` was outside the open interval (0, 1)."""

    def __init__(self, p: float) -> None:
        super().__init__(f"edge preservation ratio must be in (0, 1), got {p!r}")
        self.p = p


class DatasetError(ReproError):
    """A dataset could not be constructed or located."""


class EmbeddingError(ReproError):
    """Node embedding training failed or received invalid input."""


class TaskError(ReproError):
    """An evaluation task failed or received incompatible graphs."""


class BenchError(ReproError):
    """A benchmark experiment was misconfigured."""


class ServiceError(ReproError):
    """The shedding service could not accept or execute a request."""


class AdmissionError(ServiceError):
    """A request was refused by the service's admission controller."""


class SessionError(ServiceError):
    """A streaming session could not be opened, driven, or closed."""
