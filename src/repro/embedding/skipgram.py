"""Skip-gram with negative sampling (SGNS), pure numpy.

Trains node embeddings from random-walk corpora: every (center, context)
pair inside a sliding window is a positive example; negatives are drawn
from the unigram^0.75 distribution (the word2vec convention).  Gradient
updates are the standard SGNS ones, applied per center with all its
positives/negatives vectorised.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import EmbeddingError
from repro.rng import RandomState, ensure_rng

__all__ = ["train_skipgram"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Clip to keep exp() in range; gradients saturate there anyway.
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def train_skipgram(
    walks: Sequence[Sequence[int]],
    num_nodes: int,
    dimensions: int = 32,
    window: int = 5,
    negatives: int = 5,
    epochs: int = 2,
    learning_rate: float = 0.025,
    seed: RandomState = None,
) -> np.ndarray:
    """Train SGNS embeddings; returns ``float64[num_nodes, dimensions]``.

    Nodes that never appear in ``walks`` keep their small random
    initialisation (they carry no signal either way).
    """
    if num_nodes < 1:
        raise EmbeddingError(f"num_nodes must be >= 1, got {num_nodes}")
    if dimensions < 1:
        raise EmbeddingError(f"dimensions must be >= 1, got {dimensions}")
    if window < 1:
        raise EmbeddingError(f"window must be >= 1, got {window}")
    if negatives < 0:
        raise EmbeddingError(f"negatives must be >= 0, got {negatives}")
    if not walks:
        raise EmbeddingError("cannot train on an empty walk corpus")

    rng = ensure_rng(seed)
    embeddings = (rng.random((num_nodes, dimensions)) - 0.5) / dimensions
    context = np.zeros((num_nodes, dimensions), dtype=np.float64)

    # Unigram^0.75 negative-sampling table.
    frequency = np.zeros(num_nodes, dtype=np.float64)
    for walk in walks:
        for node in walk:
            if not 0 <= node < num_nodes:
                raise EmbeddingError(f"walk contains out-of-range node id {node}")
            frequency[node] += 1.0
    noise = frequency**0.75
    noise_total = noise.sum()
    if noise_total == 0:
        raise EmbeddingError("walk corpus is empty of nodes")
    noise /= noise_total

    for epoch in range(epochs):
        rate = learning_rate * (1.0 - epoch / max(epochs, 1)) + 1e-4
        for walk in walks:
            length = len(walk)
            for position, center in enumerate(walk):
                lo = max(0, position - window)
                hi = min(length, position + window + 1)
                positives = [walk[i] for i in range(lo, hi) if i != position]
                if not positives:
                    continue
                positive_ids = np.asarray(positives, dtype=np.int64)
                negative_ids = rng.choice(
                    num_nodes, size=negatives * len(positives), p=noise
                )
                targets = np.concatenate([positive_ids, negative_ids])
                labels = np.zeros(targets.size, dtype=np.float64)
                labels[: positive_ids.size] = 1.0

                center_vector = embeddings[center]
                target_vectors = context[targets]
                scores = _sigmoid(target_vectors @ center_vector)
                gradient = (labels - scores) * rate  # shape (targets,)
                center_update = gradient @ target_vectors
                # Accumulate context updates; np.add.at handles repeats.
                np.add.at(context, targets, gradient[:, None] * center_vector[None, :])
                embeddings[center] += center_update
    return embeddings
