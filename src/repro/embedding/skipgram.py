"""Skip-gram with negative sampling (SGNS), pure numpy.

Trains node embeddings from random-walk corpora: every (center, context)
pair inside a sliding window is a positive example; negatives are drawn
from the unigram^0.75 distribution (the word2vec convention).

Two engines, mirroring the walk generator:

* ``engine="batched"`` (default) builds the full (center, context) pair
  arrays once from the walk matrix — one diagonal slice per window
  offset, no per-window Python loop — then trains in shuffled
  mini-batches: negatives are inverse-sampled from the noise
  distribution's cumsum in one draw per batch, scores/gradients are
  computed for the whole batch, and both embedding tables are updated
  with ``np.add.at`` scatters (duplicate centers/targets within a batch
  accumulate).
* ``engine="legacy"`` is the original per-center loop
  (:func:`_legacy_train_skipgram`), kept as the oracle.

Both engines apply the same per-example gradient formula and the same
linearly-decayed learning rate; they differ in update granularity (a
mini-batch uses pre-batch parameters for every example in it, the legacy
loop updates after every center), so equivalence is statistical — the
link-prediction task pins end-to-end utility agreement.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np

from repro.errors import EmbeddingError
from repro.rng import RandomState, ensure_rng

__all__ = ["train_skipgram", "build_skipgram_pairs"]

_ENGINES = ("batched", "legacy")

WalkCorpus = Union[Sequence[Sequence[int]], np.ndarray]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Clip to keep exp() in range; gradients saturate there anyway.
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _scatter_rows(table: np.ndarray, rows: np.ndarray, updates: np.ndarray) -> None:
    """``table[rows] += updates`` with duplicate rows accumulated.

    The mini-batch scatter: ``np.add.at`` for batches small relative to
    the table, flattened ``np.bincount`` otherwise — ``add.at``'s buffered
    inner loop is an order of magnitude slower per element (the same
    adaptive switch as :func:`repro.graph.kernels._scatter_add`).
    """
    if rows.shape[0] * 4 < table.shape[0]:
        np.add.at(table, rows, updates)
        return
    dimensions = table.shape[1]
    flat = rows[:, None] * dimensions + np.arange(dimensions)[None, :]
    table += np.bincount(
        flat.ravel(), weights=updates.ravel(), minlength=table.size
    ).reshape(table.shape)


def _as_walk_matrix(walks: WalkCorpus) -> np.ndarray:
    """Walk corpus as a dense ``int64[W, L]`` matrix, padded with ``-1``.

    Batched walk engines already produce the matrix (all rows full
    length); list-of-lists corpora (e.g. from the legacy walker) are
    right-padded so the pair builder can slice diagonally.
    """
    if isinstance(walks, np.ndarray):
        if walks.ndim != 2:
            raise EmbeddingError(f"walk matrix must be 2-D, got shape {walks.shape}")
        return walks.astype(np.int64, copy=False)
    lengths = [len(walk) for walk in walks]
    matrix = np.full((len(lengths), max(lengths, default=0)), -1, dtype=np.int64)
    for row, walk in enumerate(walks):
        matrix[row, : lengths[row]] = walk
    # Negative cells must all be padding; a negative *node id* in the
    # input would otherwise masquerade as padding.
    if int((matrix < 0).sum()) != matrix.size - sum(lengths):
        raise EmbeddingError(f"walk contains out-of-range node id {int(matrix.min())}")
    return matrix


def build_skipgram_pairs(
    walks: WalkCorpus, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """All ordered (center, context) pairs within ``window``, as flat arrays.

    For each offset ``d = 1..window``, the pair ``(walk[i], walk[i + d])``
    is emitted in both directions — exactly the multiset the per-position
    sliding-window loop produces.  Padding entries (``-1``) never pair.
    """
    if window < 1:
        raise EmbeddingError(f"window must be >= 1, got {window}")
    matrix = _as_walk_matrix(walks)
    centers = []
    contexts = []
    for offset in range(1, min(window, matrix.shape[1] - 1) + 1):
        left = matrix[:, :-offset].ravel()
        right = matrix[:, offset:].ravel()
        valid = (left >= 0) & (right >= 0)
        left, right = left[valid], right[valid]
        centers.append(left)
        contexts.append(right)
        centers.append(right)
        contexts.append(left)
    if not centers:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    return np.concatenate(centers), np.concatenate(contexts)


def train_skipgram(
    walks: WalkCorpus,
    num_nodes: int,
    dimensions: int = 32,
    window: int = 5,
    negatives: int = 5,
    epochs: int = 2,
    learning_rate: float = 0.025,
    seed: RandomState = None,
    engine: str = "batched",
    batch_size: int = 1024,
) -> np.ndarray:
    """Train SGNS embeddings; returns ``float64[num_nodes, dimensions]``.

    ``walks`` may be a list of id lists or a dense walk matrix from
    :func:`repro.embedding.walks.generate_walk_matrix`.  Nodes that never
    appear in ``walks`` keep their small random initialisation (they
    carry no signal either way).
    """
    if engine not in _ENGINES:
        raise EmbeddingError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if num_nodes < 1:
        raise EmbeddingError(f"num_nodes must be >= 1, got {num_nodes}")
    if dimensions < 1:
        raise EmbeddingError(f"dimensions must be >= 1, got {dimensions}")
    if window < 1:
        raise EmbeddingError(f"window must be >= 1, got {window}")
    if negatives < 0:
        raise EmbeddingError(f"negatives must be >= 0, got {negatives}")
    if batch_size < 1:
        raise EmbeddingError(f"batch_size must be >= 1, got {batch_size}")
    if len(walks) == 0:
        raise EmbeddingError("cannot train on an empty walk corpus")
    if engine == "legacy":
        if isinstance(walks, np.ndarray):
            walks = [[node for node in row if node >= 0] for row in walks.tolist()]
        return _legacy_train_skipgram(
            walks,
            num_nodes,
            dimensions=dimensions,
            window=window,
            negatives=negatives,
            epochs=epochs,
            learning_rate=learning_rate,
            seed=seed,
        )

    matrix = _as_walk_matrix(walks)
    present = matrix[matrix >= 0]
    if present.size and int(present.max()) >= num_nodes:
        raise EmbeddingError(
            f"walk contains out-of-range node id {int(present.max())}"
        )

    rng = ensure_rng(seed)
    embeddings = (rng.random((num_nodes, dimensions)) - 0.5) / dimensions
    context = np.zeros((num_nodes, dimensions), dtype=np.float64)

    # Unigram^0.75 negative-sampling distribution, as a cumsum so a batch
    # of negatives is one uniform draw + one searchsorted.
    frequency = np.bincount(present, minlength=num_nodes).astype(np.float64)
    noise = frequency**0.75
    noise_total = noise.sum()
    if noise_total == 0:
        raise EmbeddingError("walk corpus is empty of nodes")
    noise_cdf = np.cumsum(noise / noise_total)

    pair_centers, pair_contexts = build_skipgram_pairs(matrix, window)
    num_pairs = pair_centers.shape[0]
    if num_pairs == 0:
        return embeddings
    # A mini-batch applies every example against pre-batch parameters, so
    # an epoch needs enough batches for the SGD dynamics to develop: on a
    # tiny corpus one corpus-sized batch collapses all vectors onto a
    # common direction.  Cap the batch at ~1/8 of the pair set.
    effective_batch = max(1, min(batch_size, num_pairs // 8 or 1))

    for epoch in range(epochs):
        rate = learning_rate * (1.0 - epoch / max(epochs, 1)) + 1e-4
        order = rng.permutation(num_pairs)
        for lo in range(0, num_pairs, effective_batch):
            batch = order[lo : lo + effective_batch]
            centers = pair_centers[batch]
            positives = pair_contexts[batch]
            size = centers.shape[0]
            if negatives:
                draws = rng.random(size * negatives)
                sampled = np.searchsorted(noise_cdf, draws, side="right")
                np.minimum(sampled, num_nodes - 1, out=sampled)
                targets = np.concatenate(
                    [positives[:, None], sampled.reshape(size, negatives)], axis=1
                )
            else:
                targets = positives[:, None]
            labels = np.zeros(targets.shape, dtype=np.float64)
            labels[:, 0] = 1.0

            center_vectors = embeddings[centers]  # (B, D)
            target_vectors = context[targets]  # (B, K, D)
            scores = _sigmoid(
                np.einsum("bd,bkd->bk", center_vectors, target_vectors)
            )
            gradient = (labels - scores) * rate  # (B, K)
            center_updates = np.einsum("bk,bkd->bd", gradient, target_vectors)
            context_updates = gradient[:, :, None] * center_vectors[:, None, :]
            # Scatter with accumulation: centers and targets repeat within
            # a batch; all updates use pre-batch parameters.
            _scatter_rows(embeddings, centers, center_updates)
            _scatter_rows(
                context, targets.ravel(), context_updates.reshape(-1, dimensions)
            )
    return embeddings


def _legacy_train_skipgram(
    walks: Sequence[Sequence[int]],
    num_nodes: int,
    dimensions: int = 32,
    window: int = 5,
    negatives: int = 5,
    epochs: int = 2,
    learning_rate: float = 0.025,
    seed: RandomState = None,
) -> np.ndarray:
    """Per-center sequential SGNS — the mini-batched engine's oracle."""
    rng = ensure_rng(seed)
    embeddings = (rng.random((num_nodes, dimensions)) - 0.5) / dimensions
    context = np.zeros((num_nodes, dimensions), dtype=np.float64)

    # Unigram^0.75 negative-sampling table.
    frequency = np.zeros(num_nodes, dtype=np.float64)
    for walk in walks:
        for node in walk:
            if not 0 <= node < num_nodes:
                raise EmbeddingError(f"walk contains out-of-range node id {node}")
            frequency[node] += 1.0
    noise = frequency**0.75
    noise_total = noise.sum()
    if noise_total == 0:
        raise EmbeddingError("walk corpus is empty of nodes")
    noise /= noise_total

    for epoch in range(epochs):
        rate = learning_rate * (1.0 - epoch / max(epochs, 1)) + 1e-4
        for walk in walks:
            length = len(walk)
            for position, center in enumerate(walk):
                lo = max(0, position - window)
                hi = min(length, position + window + 1)
                positives = [walk[i] for i in range(lo, hi) if i != position]
                if not positives:
                    continue
                positive_ids = np.asarray(positives, dtype=np.int64)
                negative_ids = rng.choice(
                    num_nodes, size=negatives * len(positives), p=noise
                )
                targets = np.concatenate([positive_ids, negative_ids])
                labels = np.zeros(targets.size, dtype=np.float64)
                labels[: positive_ids.size] = 1.0

                center_vector = embeddings[center]
                target_vectors = context[targets]
                scores = _sigmoid(target_vectors @ center_vector)
                gradient = (labels - scores) * rate  # shape (targets,)
                center_update = gradient @ target_vectors
                # Accumulate context updates; np.add.at handles repeats.
                np.add.at(context, targets, gradient[:, None] * center_vector[None, :])
                embeddings[center] += center_update
    return embeddings
