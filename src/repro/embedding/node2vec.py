"""High-level Node2Vec model: walks -> skip-gram -> per-label embeddings.

Wires :func:`repro.embedding.walks.generate_walks` and
:func:`repro.embedding.skipgram.train_skipgram` behind one call, keeping
the label <-> integer-id mapping consistent with the graph's CSR order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.embedding.skipgram import train_skipgram
from repro.embedding.walks import generate_walks
from repro.graph.graph import Graph, Node
from repro.rng import RandomState, ensure_rng

__all__ = ["Node2VecModel", "node2vec_embed"]


@dataclass(frozen=True)
class Node2VecModel:
    """Trained embeddings plus the label mapping used to index them."""

    embeddings: np.ndarray
    labels: List[Node]
    index_of: Dict[Node, int]

    def vector(self, node: Node) -> np.ndarray:
        """Embedding vector for an original node label."""
        return self.embeddings[self.index_of[node]]


def node2vec_embed(
    graph: Graph,
    dimensions: int = 32,
    num_walks: int = 10,
    walk_length: int = 40,
    window: int = 5,
    negatives: int = 5,
    epochs: int = 2,
    p: float = 1.0,
    q: float = 1.0,
    seed: RandomState = None,
) -> Node2VecModel:
    """Train node2vec embeddings for every node in ``graph``.

    Defaults follow the paper's link-prediction setup (``p = q = 1``);
    the remaining hyperparameters are scaled for laptop-class runs.
    """
    rng = ensure_rng(seed)
    csr = graph.csr()
    walks = generate_walks(
        graph,
        num_walks=num_walks,
        walk_length=walk_length,
        p=p,
        q=q,
        seed=rng,
    )
    embeddings = train_skipgram(
        walks,
        num_nodes=csr.num_nodes,
        dimensions=dimensions,
        window=window,
        negatives=negatives,
        epochs=epochs,
        seed=rng,
    )
    return Node2VecModel(embeddings=embeddings, labels=csr.labels, index_of=csr.index_of)
