"""High-level Node2Vec model: walks -> skip-gram -> per-label embeddings.

Wires the walk generator and SGNS trainer behind one call, keeping the
label <-> integer-id mapping consistent with the graph's CSR order.

``engine`` selects the whole pipeline: ``"batched"`` (default) feeds the
dense walk matrix from :func:`repro.embedding.walks.generate_walk_matrix`
straight into the mini-batched trainer (no list materialisation);
``"legacy"`` runs the scalar walker + per-center trainer, kept as the
end-to-end oracle.  ``workers > 1`` fans batched walk epochs out across
processes with bit-identical output (see
:func:`repro.graph.parallel.parallel_walk_matrix`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import EmbeddingError
from repro.embedding.skipgram import train_skipgram
from repro.embedding.walks import _legacy_generate_walks, generate_walk_matrix
from repro.graph.graph import Graph, Node
from repro.rng import RandomState, ensure_rng

__all__ = ["Node2VecModel", "node2vec_embed"]


@dataclass(frozen=True)
class Node2VecModel:
    """Trained embeddings plus the label mapping used to index them.

    ``walk_seconds``/``sgns_seconds`` record the two pipeline stages'
    wall-clock cost (surfaced by ``repro-shed evaluate --json``).
    """

    embeddings: np.ndarray
    labels: List[Node]
    index_of: Dict[Node, int]
    walk_seconds: float = 0.0
    sgns_seconds: float = 0.0

    def vector(self, node: Node) -> np.ndarray:
        """Embedding vector for an original node label."""
        return self.embeddings[self.index_of[node]]


def node2vec_embed(
    graph: Graph,
    dimensions: int = 32,
    num_walks: int = 10,
    walk_length: int = 40,
    window: int = 5,
    negatives: int = 5,
    epochs: int = 2,
    p: float = 1.0,
    q: float = 1.0,
    seed: RandomState = None,
    engine: str = "batched",
    workers: Optional[int] = None,
) -> Node2VecModel:
    """Train node2vec embeddings for every node in ``graph``.

    Defaults follow the paper's link-prediction setup (``p = q = 1``);
    the remaining hyperparameters are scaled for laptop-class runs.
    """
    if engine not in ("batched", "legacy"):
        raise EmbeddingError(
            f"engine must be one of ('batched', 'legacy'), got {engine!r}"
        )
    rng = ensure_rng(seed)
    csr = graph.csr()
    start = time.perf_counter()
    if engine == "batched":
        walks = generate_walk_matrix(
            graph,
            num_walks=num_walks,
            walk_length=walk_length,
            p=p,
            q=q,
            seed=rng,
            workers=workers,
        )
        corpus_empty = walks.shape[0] == 0
    else:
        walks = _legacy_generate_walks(
            graph, num_walks=num_walks, walk_length=walk_length, p=p, q=q, seed=rng
        )
        corpus_empty = not walks
    walk_seconds = time.perf_counter() - start
    if corpus_empty:
        raise EmbeddingError("cannot train on an empty walk corpus")
    start = time.perf_counter()
    embeddings = train_skipgram(
        walks,
        num_nodes=csr.num_nodes,
        dimensions=dimensions,
        window=window,
        negatives=negatives,
        epochs=epochs,
        seed=rng,
        engine=engine,
    )
    sgns_seconds = time.perf_counter() - start
    return Node2VecModel(
        embeddings=embeddings,
        labels=csr.labels,
        index_of=csr.index_of,
        walk_seconds=walk_seconds,
        sgns_seconds=sgns_seconds,
    )
