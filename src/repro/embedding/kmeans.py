"""K-means clustering (Lloyd's algorithm with k-means++ seeding), numpy.

The link-prediction task clusters node embeddings into ``n_clusters = 5``
communities (the paper's setting) and predicts a link for 2-hop pairs that
land in the same cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import EmbeddingError
from repro.rng import RandomState, ensure_rng

__all__ = ["KMeansResult", "kmeans"]


@dataclass(frozen=True)
class KMeansResult:
    """Clustering outcome: integer labels, centroids, final inertia."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float


def _plusplus_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by squared distance."""
    n = points.shape[0]
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    centroids[0] = points[rng.integers(n)]
    closest = np.full(n, np.inf)
    for i in range(1, k):
        distance = ((points - centroids[i - 1]) ** 2).sum(axis=1)
        np.minimum(closest, distance, out=closest)
        total = closest.sum()
        if total <= 0:
            # All points coincide with chosen centroids; reuse any point.
            centroids[i:] = points[rng.integers(n, size=k - i)]
            break
        probabilities = closest / total
        centroids[i] = points[rng.choice(n, p=probabilities)]
    return centroids


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    max_iterations: int = 100,
    tolerance: float = 1e-7,
    seed: RandomState = None,
) -> KMeansResult:
    """Cluster ``points`` (``float[n, d]``) into ``n_clusters`` groups."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise EmbeddingError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if n_clusters < 1:
        raise EmbeddingError(f"n_clusters must be >= 1, got {n_clusters}")
    if n_clusters > n:
        raise EmbeddingError(f"n_clusters={n_clusters} exceeds number of points ({n})")

    rng = ensure_rng(seed)
    centroids = _plusplus_init(points, n_clusters, rng)
    labels = np.zeros(n, dtype=np.int64)
    point_norms = (points**2).sum(axis=1)
    for _ in range(max_iterations):
        # Assign: squared Euclidean distances via the expansion
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 — one (n, k) GEMM
        # instead of materialising the (n, k, d) difference tensor.
        distances = (
            point_norms[:, None]
            - 2.0 * (points @ centroids.T)
            + (centroids**2).sum(axis=1)[None, :]
        )
        np.maximum(distances, 0.0, out=distances)
        labels = distances.argmin(axis=1)
        new_centroids = centroids.copy()
        for cluster in range(n_clusters):
            mask = labels == cluster
            if mask.any():
                new_centroids[cluster] = points[mask].mean(axis=0)
            else:
                # Re-seed an empty cluster at the point farthest from its centroid.
                farthest = distances.min(axis=1).argmax()
                new_centroids[cluster] = points[farthest]
        shift = np.abs(new_centroids - centroids).max()
        centroids = new_centroids
        if shift < tolerance:
            break
    inertia = float(((points - centroids[labels]) ** 2).sum())
    return KMeansResult(labels=labels, centroids=centroids, inertia=inertia)
