"""Biased second-order random walks (node2vec).

The paper's link-prediction task embeds nodes with node2vec at
``p = q = 1`` — which degenerates to uniform first-order walks — but we
implement the full second-order bias so the return (``p``) and in-out
(``q``) parameters are available, matching the reference algorithm
(Grover & Leskovec, KDD 2016).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import EmbeddingError
from repro.graph.csr import CSRAdjacency
from repro.graph.graph import Graph
from repro.rng import RandomState, ensure_rng

__all__ = ["generate_walks"]


def generate_walks(
    graph: Graph,
    num_walks: int = 10,
    walk_length: int = 40,
    p: float = 1.0,
    q: float = 1.0,
    seed: RandomState = None,
) -> List[List[int]]:
    """Generate ``num_walks`` walks from every node with degree >= 1.

    Returns walks over *integer node ids* (CSR order); pair them with
    :class:`CSRAdjacency.labels` to recover original labels.  Isolated
    nodes produce no walks (they have no transitions and contribute no
    skip-gram pairs anyway).
    """
    if num_walks < 1:
        raise EmbeddingError(f"num_walks must be >= 1, got {num_walks}")
    if walk_length < 1:
        raise EmbeddingError(f"walk_length must be >= 1, got {walk_length}")
    if p <= 0 or q <= 0:
        raise EmbeddingError(f"p and q must be positive, got p={p}, q={q}")

    rng = ensure_rng(seed)
    csr = graph.csr()
    uniform = p == 1.0 and q == 1.0
    walks: List[List[int]] = []

    starts = [node for node in range(csr.num_nodes) if len(csr.neighbors(node)) > 0]
    for _ in range(num_walks):
        for start in starts:
            walk = [start]
            while len(walk) < walk_length:
                current = walk[-1]
                neighbors = csr.neighbors(current)
                if neighbors.size == 0:
                    break
                if uniform or len(walk) < 2:
                    nxt = int(neighbors[int(rng.integers(neighbors.size))])
                else:
                    nxt = _biased_step(csr, walk[-2], current, neighbors, p, q, rng)
                walk.append(nxt)
            walks.append(walk)
    return walks


def _biased_step(
    csr: CSRAdjacency,
    previous: int,
    current: int,
    neighbors: np.ndarray,
    p: float,
    q: float,
    rng: np.random.Generator,
) -> int:
    """One second-order step: bias by return/in-out distance to ``previous``."""
    previous_neighbors = csr.neighbors(previous)
    weights = np.empty(neighbors.size, dtype=np.float64)
    for i, candidate in enumerate(neighbors):
        if candidate == previous:
            weights[i] = 1.0 / p
        elif _binary_contains(previous_neighbors, candidate):
            weights[i] = 1.0
        else:
            weights[i] = 1.0 / q
    weights /= weights.sum()
    return int(neighbors[rng.choice(neighbors.size, p=weights)])


def _binary_contains(sorted_array: np.ndarray, value: int) -> bool:
    index = int(np.searchsorted(sorted_array, value))
    return index < sorted_array.size and sorted_array[index] == value
