"""Biased second-order random walks (node2vec).

The paper's link-prediction task embeds nodes with node2vec at
``p = q = 1`` — which degenerates to uniform first-order walks — but we
implement the full second-order bias so the return (``p``) and in-out
(``q``) parameters are available, matching the reference algorithm
(Grover & Leskovec, KDD 2016).

Two engines, mirroring the PR 1/2 kernel pattern:

* ``engine="batched"`` (default) runs
  :func:`repro.graph.kernels.walk_epoch_matrix`: all walks of an epoch
  advance one step per numpy operation over the cached CSR snapshot —
  a uniform fast path at ``p == q == 1`` and a vectorised second-order
  step (global ``searchsorted`` membership test against the previous
  node's sorted adjacency, per-segment cumsum inverse sampling)
  otherwise.  ``workers > 1`` fans the epochs out across processes via
  :func:`repro.graph.parallel.parallel_walk_matrix`.
* ``engine="legacy"`` is the original per-step scalar walker, kept as
  the statistical oracle (:func:`_legacy_generate_walks`).

Determinism contract: the batched engine derives one child seed per
epoch from the caller's generator *before* any stepping, and each epoch
consumes only its own child stream — so ``workers=N`` output is
bit-identical to serial output, and a fixed integer seed yields a
bit-identical walk matrix everywhere.  The two engines consume the RNG
differently and therefore produce *different* (equally distributed)
walks for the same seed; equivalence is statistical, not bitwise
(property-tested on per-edge transition frequencies).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import EmbeddingError
from repro.graph.csr import CSRAdjacency
from repro.graph.graph import Graph
from repro.graph.kernels import walk_epoch_matrix
from repro.rng import RandomState, ensure_rng

__all__ = ["generate_walks", "generate_walk_matrix"]

_ENGINES = ("batched", "legacy")


def _validate(num_walks: int, walk_length: int, p: float, q: float) -> None:
    if num_walks < 1:
        raise EmbeddingError(f"num_walks must be >= 1, got {num_walks}")
    if walk_length < 1:
        raise EmbeddingError(f"walk_length must be >= 1, got {walk_length}")
    if p <= 0 or q <= 0:
        raise EmbeddingError(f"p and q must be positive, got p={p}, q={q}")


def generate_walks(
    graph: Graph,
    num_walks: int = 10,
    walk_length: int = 40,
    p: float = 1.0,
    q: float = 1.0,
    seed: RandomState = None,
    engine: str = "batched",
    workers: Optional[int] = None,
) -> List[List[int]]:
    """Generate ``num_walks`` walks from every node with degree >= 1.

    Returns walks over *integer node ids* (CSR order); pair them with
    :class:`CSRAdjacency.labels` to recover original labels.  Isolated
    nodes produce no walks (they have no transitions and contribute no
    skip-gram pairs anyway).

    ``engine="batched"`` (default) advances all walks of an epoch one
    step per numpy operation; ``engine="legacy"`` is the scalar oracle.
    ``workers > 1`` parallelises batched epochs across processes with
    bit-identical output (ignored by the legacy engine).
    """
    if engine == "batched":
        return generate_walk_matrix(
            graph,
            num_walks=num_walks,
            walk_length=walk_length,
            p=p,
            q=q,
            seed=seed,
            workers=workers,
        ).tolist()
    if engine == "legacy":
        return _legacy_generate_walks(
            graph, num_walks=num_walks, walk_length=walk_length, p=p, q=q, seed=seed
        )
    raise EmbeddingError(f"engine must be one of {_ENGINES}, got {engine!r}")


def generate_walk_matrix(
    graph: Graph,
    num_walks: int = 10,
    walk_length: int = 40,
    p: float = 1.0,
    q: float = 1.0,
    seed: RandomState = None,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Batched walk corpus as one dense matrix ``int64[W, walk_length]``.

    Rows are ordered epoch-major (epoch 0's walks first), start-node-minor
    (ascending non-isolated node id) — the legacy engine's row order.
    Every row is full length: in an undirected simple graph a walk that
    left a degree->=1 start always has a neighbour to continue to.

    This is the allocation-free input for the mini-batched SGNS trainer;
    :func:`generate_walks` wraps it when lists are wanted.
    """
    _validate(num_walks, walk_length, p, q)
    rng = ensure_rng(seed)
    csr = graph.csr()
    # One child seed per epoch, drawn before any stepping: the epoch
    # streams are independent of scheduling, so serial and parallel
    # fan-out produce bit-identical matrices.
    epoch_seeds = rng.integers(0, 2**63 - 1, size=num_walks, dtype=np.int64)
    starts = np.nonzero(csr.degree_array() > 0)[0].astype(np.int64)
    if starts.size == 0:
        return np.empty((0, walk_length), dtype=np.int64)
    if workers is not None and workers < 1:
        raise EmbeddingError(f"workers must be >= 1, got {workers}")
    if workers is not None and workers > 1 and num_walks > 1:
        from repro.graph.parallel import parallel_walk_matrix

        return parallel_walk_matrix(
            csr, epoch_seeds, walk_length, p=p, q=q, num_workers=workers
        )
    blocks = [
        walk_epoch_matrix(
            csr, ensure_rng(int(epoch_seed)), walk_length, p=p, q=q, starts=starts
        )
        for epoch_seed in epoch_seeds
    ]
    return np.vstack(blocks)


def _legacy_generate_walks(
    graph: Graph,
    num_walks: int = 10,
    walk_length: int = 40,
    p: float = 1.0,
    q: float = 1.0,
    seed: RandomState = None,
) -> List[List[int]]:
    """Scalar per-step walker — the batched engine's statistical oracle."""
    _validate(num_walks, walk_length, p, q)
    rng = ensure_rng(seed)
    csr = graph.csr()
    uniform = p == 1.0 and q == 1.0
    walks: List[List[int]] = []

    starts = [node for node in range(csr.num_nodes) if len(csr.neighbors(node)) > 0]
    for _ in range(num_walks):
        for start in starts:
            walk = [start]
            while len(walk) < walk_length:
                current = walk[-1]
                neighbors = csr.neighbors(current)
                if neighbors.size == 0:
                    break
                if uniform or len(walk) < 2:
                    nxt = int(neighbors[int(rng.integers(neighbors.size))])
                else:
                    nxt = _biased_step(csr, walk[-2], current, neighbors, p, q, rng)
                walk.append(nxt)
            walks.append(walk)
    return walks


def _biased_step(
    csr: CSRAdjacency,
    previous: int,
    current: int,
    neighbors: np.ndarray,
    p: float,
    q: float,
    rng: np.random.Generator,
) -> int:
    """One second-order step: bias by return/in-out distance to ``previous``."""
    previous_neighbors = csr.neighbors(previous)
    weights = np.empty(neighbors.size, dtype=np.float64)
    for i, candidate in enumerate(neighbors):
        if candidate == previous:
            weights[i] = 1.0 / p
        elif _binary_contains(previous_neighbors, candidate):
            weights[i] = 1.0
        else:
            weights[i] = 1.0 / q
    weights /= weights.sum()
    return int(neighbors[rng.choice(neighbors.size, p=weights)])


def _binary_contains(sorted_array: np.ndarray, value: int) -> bool:
    index = int(np.searchsorted(sorted_array, value))
    return index < sorted_array.size and sorted_array[index] == value
