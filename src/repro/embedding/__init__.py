"""Node-embedding substrate: node2vec walks, SGNS training, and k-means.

Everything the link-prediction evaluation task needs, implemented in plain
numpy (no external ML dependencies).
"""

from repro.embedding.kmeans import KMeansResult, kmeans
from repro.embedding.node2vec import Node2VecModel, node2vec_embed
from repro.embedding.skipgram import train_skipgram
from repro.embedding.walks import generate_walks

__all__ = [
    "generate_walks",
    "train_skipgram",
    "node2vec_embed",
    "Node2VecModel",
    "kmeans",
    "KMeansResult",
]
