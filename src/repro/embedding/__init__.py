"""Node-embedding substrate: node2vec walks, SGNS training, and k-means.

Everything the link-prediction evaluation task needs, implemented in plain
numpy (no external ML dependencies).  Walk generation and SGNS training
both run array-native by default (``engine="batched"``) with the original
scalar implementations kept as ``engine="legacy"`` oracles.
"""

from repro.embedding.kmeans import KMeansResult, kmeans
from repro.embedding.node2vec import Node2VecModel, node2vec_embed
from repro.embedding.skipgram import build_skipgram_pairs, train_skipgram
from repro.embedding.walks import generate_walk_matrix, generate_walks

__all__ = [
    "generate_walks",
    "generate_walk_matrix",
    "train_skipgram",
    "build_skipgram_pairs",
    "node2vec_embed",
    "Node2VecModel",
    "kmeans",
    "KMeansResult",
]
