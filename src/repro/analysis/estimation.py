"""Estimating original-graph quantities from a reduced graph.

The paper's pitch is that a degree-preserving reduction lets users
"estimate the original graph information from the reduced graph".  This
module makes those estimators explicit.  All of them are Horvitz-Thompson
style corrections under the idealised model that each edge survives
independently with probability ``p``:

* an edge survives w.p. ``p``  →  ``m ≈ m'/p``;
* a node's edges survive w.p. ``p`` each  →  ``deg(u) ≈ deg'(u)/p``;
* a wedge (2-path) needs 2 edges  →  ``wedges ≈ wedges'/p²``;
* a triangle needs 3 edges  →  ``triangles ≈ triangles'/p³``;
* global clustering ``3·triangles / wedges``  →  estimate with the two
  corrected counts, i.e. multiply the reduced ratio by ``1/p``.

CRR and BM2 are *not* independent samplers — they are better, steering
each node toward exactly ``p·deg(u)`` — so the degree-based estimators
carry less variance than the i.i.d. model suggests, while the
triangle/wedge estimators keep a method-dependent bias (CRR's
betweenness-first phase actively avoids redundant triangle edges).  The
estimation benchmarks quantify both effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.base import validate_ratio
from repro.graph.clustering import triangle_count
from repro.graph.graph import Graph, Node

__all__ = [
    "wedge_count",
    "estimate_num_edges",
    "estimate_degree",
    "estimate_degrees",
    "estimate_average_degree",
    "estimate_wedge_count",
    "estimate_triangle_count",
    "estimate_global_clustering",
    "EstimationReport",
    "estimation_report",
]


def estimate_num_edges(reduced: Graph, p: float) -> float:
    """``|E| ≈ |E'| / p``."""
    p = validate_ratio(p)
    return reduced.num_edges / p


def estimate_degree(reduced: Graph, node: Node, p: float) -> float:
    """``deg(u) ≈ deg'(u) / p`` (Equation 1 inverted)."""
    p = validate_ratio(p)
    return reduced.degree(node) / p


def estimate_degrees(reduced: Graph, p: float) -> Dict[Node, float]:
    """Per-node degree estimates."""
    p = validate_ratio(p)
    return {node: reduced.degree(node) / p for node in reduced.nodes()}


def estimate_average_degree(reduced: Graph, p: float) -> float:
    """``avg deg ≈ 2|E'| / (p·|V|)`` (0.0 for the empty graph)."""
    p = validate_ratio(p)
    if reduced.num_nodes == 0:
        return 0.0
    return 2.0 * reduced.num_edges / (p * reduced.num_nodes)


def wedge_count(graph: Graph) -> int:
    """Number of wedges (paths of length 2), ``Σ_u C(deg(u), 2)``."""
    return sum(
        degree * (degree - 1) // 2
        for degree in (graph.degree(node) for node in graph.nodes())
    )


def estimate_wedge_count(reduced: Graph, p: float) -> float:
    """``wedges ≈ wedges' / p²`` — a wedge survives iff both edges do."""
    p = validate_ratio(p)
    return wedge_count(reduced) / (p * p)


def estimate_triangle_count(reduced: Graph, p: float) -> float:
    """``triangles ≈ triangles' / p³`` — all three edges must survive."""
    p = validate_ratio(p)
    return triangle_count(reduced) / (p**3)


def estimate_global_clustering(reduced: Graph, p: float) -> float:
    """Global clustering ``3T/W`` with both counts bias-corrected.

    Simplifies to ``(3T'/W') · (1/p)``.  Returns 0.0 when the reduced
    graph has no wedges.
    """
    p = validate_ratio(p)
    wedges = wedge_count(reduced)
    if wedges == 0:
        return 0.0
    return 3.0 * triangle_count(reduced) / wedges / p


@dataclass(frozen=True)
class EstimationReport:
    """Side-by-side true vs estimated values for one reduction."""

    p: float
    true_num_edges: int
    estimated_num_edges: float
    true_average_degree: float
    estimated_average_degree: float
    true_triangles: int
    estimated_triangles: float
    true_global_clustering: float
    estimated_global_clustering: float

    def relative_errors(self) -> Dict[str, float]:
        """Relative error per quantity (``nan``-free: 0-true treated as abs)."""

        def relative(true: float, estimate: float) -> float:
            if true == 0:
                return abs(estimate)
            return abs(estimate - true) / abs(true)

        return {
            "num_edges": relative(self.true_num_edges, self.estimated_num_edges),
            "average_degree": relative(
                self.true_average_degree, self.estimated_average_degree
            ),
            "triangles": relative(self.true_triangles, self.estimated_triangles),
            "global_clustering": relative(
                self.true_global_clustering, self.estimated_global_clustering
            ),
        }


def estimation_report(original: Graph, reduced: Graph, p: float) -> EstimationReport:
    """Compute all estimators on ``reduced`` and the truths on ``original``."""
    p = validate_ratio(p)
    true_wedges = wedge_count(original)
    true_triangles = triangle_count(original)
    true_clustering = 3.0 * true_triangles / true_wedges if true_wedges else 0.0
    return EstimationReport(
        p=p,
        true_num_edges=original.num_edges,
        estimated_num_edges=estimate_num_edges(reduced, p),
        true_average_degree=original.average_degree(),
        estimated_average_degree=estimate_average_degree(reduced, p),
        true_triangles=true_triangles,
        estimated_triangles=estimate_triangle_count(reduced, p),
        true_global_clustering=true_clustering,
        estimated_global_clustering=estimate_global_clustering(reduced, p),
    )
