"""Analysis helpers: original-graph estimation and structural summaries."""

from repro.analysis.estimation import (
    EstimationReport,
    estimate_average_degree,
    estimate_degree,
    estimate_degrees,
    estimate_global_clustering,
    estimate_num_edges,
    estimate_triangle_count,
    estimate_wedge_count,
    estimation_report,
    wedge_count,
)
from repro.analysis.stats import GraphStats, graph_stats

__all__ = [
    "estimate_num_edges",
    "estimate_degree",
    "estimate_degrees",
    "estimate_average_degree",
    "estimate_wedge_count",
    "estimate_triangle_count",
    "estimate_global_clustering",
    "estimation_report",
    "EstimationReport",
    "wedge_count",
    "GraphStats",
    "graph_stats",
]
