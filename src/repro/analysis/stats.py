"""One-call structural summary of a graph.

``graph_stats(g)`` computes the statistics a user inspects before and
after a reduction: sizes, degree summary, clustering, connectivity, a
heavy-tail exponent, and assortativity.  Exact computations are used up
to ``exact_limit`` nodes; beyond that the BFS-bound quantities switch to
sampled estimators so the call stays laptop-friendly on large graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graph.assortativity import degree_assortativity
from repro.graph.clustering import average_clustering
from repro.graph.degree import estimate_powerlaw_exponent, max_degree
from repro.graph.graph import Graph
from repro.graph.shortest_paths import effective_diameter
from repro.graph.traversal import connected_components
from repro.rng import RandomState

__all__ = ["GraphStats", "graph_stats"]


@dataclass(frozen=True)
class GraphStats:
    """Structural summary of one graph."""

    num_nodes: int
    num_edges: int
    average_degree: float
    max_degree: int
    density: float
    average_clustering: float
    num_components: int
    giant_component_fraction: float
    effective_diameter_90: float
    powerlaw_alpha: float
    degree_assortativity: float

    def describe(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [
            f"nodes: {self.num_nodes}",
            f"edges: {self.num_edges}",
            f"average degree: {self.average_degree:.3f}",
            f"max degree: {self.max_degree}",
            f"density: {self.density:.6f}",
            f"average clustering: {self.average_clustering:.4f}",
            f"components: {self.num_components}"
            f" (giant covers {self.giant_component_fraction:.1%})",
            f"90% effective diameter: {self.effective_diameter_90:.2f}",
            f"power-law alpha: {self.powerlaw_alpha:.2f}",
            f"degree assortativity: {self.degree_assortativity:.4f}",
        ]
        return "\n".join(lines)


def graph_stats(
    graph: Graph,
    exact_limit: int = 2000,
    num_sources: int = 128,
    seed: RandomState = 0,
) -> GraphStats:
    """Compute a :class:`GraphStats` for ``graph``.

    Graphs above ``exact_limit`` nodes use ``num_sources`` sampled BFS
    sources for the effective diameter.
    """
    n = graph.num_nodes
    components = connected_components(graph)
    giant = len(components[0]) / n if components and n else 0.0

    if n >= 2 and graph.num_edges > 0:
        sources: Optional[int] = None if n <= exact_limit else num_sources
        diameter = effective_diameter(graph, fraction=0.9, num_sources=sources, seed=seed)
    else:
        diameter = float("nan")

    alpha, _ = estimate_powerlaw_exponent(graph) if n else (float("nan"), 0)
    return GraphStats(
        num_nodes=n,
        num_edges=graph.num_edges,
        average_degree=graph.average_degree(),
        max_degree=max_degree(graph),
        density=graph.density(),
        average_clustering=average_clustering(graph),
        num_components=len(components),
        giant_component_fraction=giant,
        effective_diameter_90=diameter,
        powerlaw_alpha=alpha,
        degree_assortativity=degree_assortativity(graph),
    )
