"""Competing graph-reduction methods the paper compares against.

Currently: UDS (utility-driven graph summarization), the state-of-the-art
grouping-based baseline from Kumar & Efstathopoulos (VLDB 2019).
"""

from repro.baselines.summary import GraphSummary
from repro.baselines.uds import UDSSummarizer

__all__ = ["GraphSummary", "UDSSummarizer"]
