"""UDS — Utility-Driven Graph Summarization (the paper's competitor).

Reimplemented from Kumar & Efstathopoulos, "Utility-driven graph
summarization" (VLDB 2019), as configured in the edge-shedding paper's
experiments: node/edge importance is betweenness centrality and the utility
threshold is ``τ_U = p``.

Model.  Every original edge ``e`` carries a utility ``u(e)`` (normalised
edge betweenness; ``Σ u(e) = 1``).  A summary groups nodes into supernodes
and keeps a set of superedges.  Its utility starts at 1 and pays two costs:

* dropping a real edge not covered by any kept superedge costs ``u(e)``;
* every *spurious* pair covered by a kept superedge (a non-adjacent node
  pair inside the superedge's block) costs the mean edge utility
  ``π = 1/|E|``.

For each supernode pair with at least one real edge the summarizer keeps
the superedge iff that is the cheaper side (``spurious·π ≤ Σu``), so the
loss of a pair is ``min(spurious·π, Σu)``.

Algorithm.  Greedy bottom-up merging: sweep the supernodes in seeded random
order; for each, evaluate merging with its best 2-hop candidate (the exact
loss change over all affected pairs) and apply the cheapest merge while the
summary utility stays at or above ``τ_U``.  Sweeps repeat until no merge
fits the budget.  Lower ``τ_U`` (= lower ``p``) admits more merges, which
is exactly why UDS gets *slower* as ``p`` shrinks — the trend the paper's
Table III shows.

The produced :class:`~repro.core.base.ReductionResult` carries the lossy
reconstruction as ``reduced`` and the :class:`GraphSummary` itself under
``stats["summary"]`` (the top-k task uses the summary-native PageRank the
paper mentions).

Engines.  ``engine="array"`` (default) computes the edge utilities with the
CSR Brandes kernel and runs the merge loop over integer node ids: pair
state is keyed by packed int pairs instead of frozensets, supernode sizes
live in a numpy array (O(1) lookups instead of copying member sets on
every candidate evaluation), and candidates are scanned in sorted id
order.  ``engine="legacy"`` is the original dict/frozenset implementation,
kept as the oracle the array engine's tests compare against.  The two
engines visit candidates in different orders and accumulate float losses
in different orders, so — unlike CRR/BM2 — they are *statistically*
equivalent rather than bit-identical: both respect the utility budget, and
the tests pin their merge counts and utilities against each other within
tolerances.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

import numpy as np

from repro.baselines.summary import GraphSummary
from repro.core.base import EdgeShedder
from repro.graph.centrality import edge_betweenness
from repro.graph.csr import CSRAdjacency
from repro.graph.graph import Graph, Node
from repro.graph.kernels import brandes_accumulate
from repro.graph.sampling import select_source_ids
from repro.rng import RandomState, ensure_rng

__all__ = ["UDSSummarizer"]

PairKey = FrozenSet[Node]


class _PairState:
    """Loss bookkeeping over supernode pairs that contain real edges.

    ``rule`` selects how a supernode pair decides whether its superedge is
    kept:

    * ``"majority"`` (default): keep iff at least half the block's node
      pairs are real edges — the density criterion grouping summarizers
      use (cf. Navlakha et al.); loss is the spurious penalty when kept and
      the dropped edge utility otherwise.
    * ``"cheaper"``: keep whichever side costs less,
      ``loss = min(spurious·π, Σu)`` — an optimistic variant that retains
      more structure per unit of utility.
    """

    def __init__(
        self,
        summary: GraphSummary,
        utilities: Dict[PairKey, float],
        spurious_penalty: float,
        rule: str = "majority",
    ) -> None:
        if rule not in ("majority", "cheaper"):
            raise ValueError(f"rule must be 'majority' or 'cheaper', got {rule!r}")
        self._summary = summary
        self._penalty = spurious_penalty
        self._rule = rule
        #: pair of representatives (frozenset, singleton for internal) ->
        #: (total edge utility, edge count)
        self._weight: Dict[PairKey, float] = {}
        self._count: Dict[PairKey, int] = {}
        #: representative -> adjacent representatives (via >=1 real edge)
        self._adjacent: Dict[Node, Set[Node]] = {}
        for (u, v), utility in utilities.items():
            key = frozenset((u, v))
            self._weight[key] = self._weight.get(key, 0.0) + utility
            self._count[key] = self._count.get(key, 0) + 1
            self._adjacent.setdefault(u, set()).add(v)
            self._adjacent.setdefault(v, set()).add(u)
        self.total_loss = 0.0  # all pairs are exact at the start
        #: pair key -> the loss currently counted inside ``total_loss``
        self._loss_cache: Dict[PairKey, float] = {}

    def adjacent(self, rep: Node) -> Set[Node]:
        return self._adjacent.get(rep, set())

    def _block_pairs(self, key: PairKey) -> int:
        reps = tuple(key)
        if len(reps) == 1:
            return self._summary.block_pairs(reps[0], reps[0])
        return self._summary.block_pairs(reps[0], reps[1])

    def _loss_for(self, weight: float, count: int, pairs: int) -> float:
        """Loss of a pair with ``count`` real edges of total ``weight``."""
        if weight == 0.0:
            return 0.0
        spurious_cost = (pairs - count) * self._penalty
        if self._rule == "cheaper":
            return min(spurious_cost, weight)
        # majority rule: keep the superedge only if the block is dense.
        if 2 * count >= pairs:
            return spurious_cost
        return weight

    def pair_loss(self, key: PairKey) -> float:
        """Loss the pair currently contributes (0 if it has no real edges)."""
        weight = self._weight.get(key, 0.0)
        if weight == 0.0:
            return 0.0
        return self._loss_for(weight, self._count[key], self._block_pairs(key))

    def keeps_superedge(self, key: PairKey) -> bool:
        """Whether this pair's superedge survives into the final summary."""
        weight = self._weight.get(key, 0.0)
        if weight == 0.0:
            return False
        count = self._count[key]
        pairs = self._block_pairs(key)
        if self._rule == "cheaper":
            return (pairs - count) * self._penalty <= weight
        return 2 * count >= pairs

    def merge_cost(self, rep_a: Node, rep_b: Node) -> float:
        """Exact change in total loss if supernodes ``rep_a``/``rep_b`` merge."""
        neighbors = (self.adjacent(rep_a) | self.adjacent(rep_b)) - {rep_a, rep_b}
        size_a = len(self._summary.members(rep_a))
        size_b = len(self._summary.members(rep_b))
        merged_size = size_a + size_b

        cost = 0.0
        for other in neighbors:
            key_a = frozenset((rep_a, other))
            key_b = frozenset((rep_b, other))
            old = self.pair_loss(key_a) + self.pair_loss(key_b)
            weight = self._weight.get(key_a, 0.0) + self._weight.get(key_b, 0.0)
            count = self._count.get(key_a, 0) + self._count.get(key_b, 0)
            pairs = merged_size * len(self._summary.members(other))
            cost += self._loss_for(weight, count, pairs) - old
        # Internal pair of the merged supernode.
        internal_keys = (
            frozenset((rep_a,)),
            frozenset((rep_b,)),
            frozenset((rep_a, rep_b)),
        )
        old = sum(self.pair_loss(key) for key in internal_keys)
        weight = sum(self._weight.get(key, 0.0) for key in internal_keys)
        count = sum(self._count.get(key, 0) for key in internal_keys)
        pairs = merged_size * (merged_size - 1) // 2
        cost += self._loss_for(weight, count, pairs) - old
        return cost

    def apply_merge(self, rep_a: Node, rep_b: Node, survivor: Node) -> None:
        """Fold pair state after ``rep_a``/``rep_b`` merged into ``survivor``."""
        absorbed = rep_b if survivor == rep_a else rep_a
        neighbors = (self.adjacent(rep_a) | self.adjacent(rep_b)) - {rep_a, rep_b}

        # Remove old losses and pair entries touching either representative.
        for other in neighbors:
            for rep in (rep_a, rep_b):
                key = frozenset((rep, other))
                if key in self._weight:
                    self.total_loss -= self._loss_cache.pop(key, 0.0)
        for key in (frozenset((rep_a,)), frozenset((rep_b,)), frozenset((rep_a, rep_b))):
            if key in self._weight:
                self.total_loss -= self._loss_cache.pop(key, 0.0)

        # Fold weights/counts into survivor-keyed entries.
        internal_weight = 0.0
        internal_count = 0
        for key in (frozenset((rep_a,)), frozenset((rep_b,)), frozenset((rep_a, rep_b))):
            internal_weight += self._weight.pop(key, 0.0)
            internal_count += self._count.pop(key, 0)
        if internal_count:
            internal_key = frozenset((survivor,))
            self._weight[internal_key] = internal_weight
            self._count[internal_key] = internal_count

        for other in neighbors:
            weight = 0.0
            count = 0
            for rep in (rep_a, rep_b):
                key = frozenset((rep, other))
                weight += self._weight.pop(key, 0.0)
                count += self._count.pop(key, 0)
            if count:
                key = frozenset((survivor, other))
                self._weight[key] = weight
                self._count[key] = count

        # Rewire adjacency.
        for other in neighbors:
            self._adjacent.setdefault(other, set()).discard(rep_a)
            self._adjacent[other].discard(rep_b)
            self._adjacent[other].add(survivor)
        self._adjacent.pop(rep_a, None)
        self._adjacent.pop(rep_b, None)
        # Internal edges live under the singleton key, not in adjacency.
        self._adjacent[survivor] = set(neighbors)

        # Re-add losses for the survivor's pairs.
        for other in neighbors:
            key = frozenset((survivor, other))
            if key in self._weight:
                loss = self.pair_loss(key)
                self._loss_cache[key] = loss
                self.total_loss += loss
        internal_key = frozenset((survivor,))
        if internal_key in self._weight:
            loss = self.pair_loss(internal_key)
            self._loss_cache[internal_key] = loss
            self.total_loss += loss

    def live_pairs(self) -> List[PairKey]:
        return list(self._weight)


class _ArrayPairState:
    """Id-native pair-loss bookkeeping — the array engine's `_PairState`.

    Same loss model, different representation: supernodes are CSR node
    ids, a pair of representatives ``a <= b`` is the packed int
    ``a * n + b`` (the singleton/internal pair of ``a`` is ``a * n + a``,
    which cannot collide with any two-rep key), and supernode sizes live
    in ``self.sizes`` so candidate evaluation never copies a member set.
    """

    def __init__(
        self,
        num_nodes: int,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        utilities: np.ndarray,
        spurious_penalty: float,
        rule: str = "majority",
    ) -> None:
        if rule not in ("majority", "cheaper"):
            raise ValueError(f"rule must be 'majority' or 'cheaper', got {rule!r}")
        self._n = num_nodes
        self._penalty = spurious_penalty
        self._rule = rule
        #: supernode sizes, indexed by representative id (0 once absorbed)
        self.sizes = np.ones(num_nodes, dtype=np.int64)
        #: packed pair key -> (total edge utility, edge count)
        self._weight: Dict[int, float] = {}
        self._count: Dict[int, int] = {}
        #: representative id -> adjacent representative ids (>=1 real edge)
        self._adjacent: Dict[int, Set[int]] = {}
        lo = np.minimum(edge_u, edge_v)
        hi = np.maximum(edge_u, edge_v)
        keys = lo * np.int64(num_nodes) + hi
        for key, utility in zip(keys.tolist(), utilities.tolist()):
            self._weight[key] = self._weight.get(key, 0.0) + utility
            self._count[key] = self._count.get(key, 0) + 1
        for u, v in zip(edge_u.tolist(), edge_v.tolist()):
            self._adjacent.setdefault(u, set()).add(v)
            self._adjacent.setdefault(v, set()).add(u)
        self.total_loss = 0.0  # all pairs are exact at the start
        self._loss_cache: Dict[int, float] = {}

    def key_of(self, rep_a: int, rep_b: int) -> int:
        if rep_a <= rep_b:
            return rep_a * self._n + rep_b
        return rep_b * self._n + rep_a

    def adjacent(self, rep: int) -> Set[int]:
        return self._adjacent.get(rep, set())

    def _block_pairs(self, key: int) -> int:
        rep_a, rep_b = divmod(key, self._n)
        size_a = int(self.sizes[rep_a])
        if rep_a == rep_b:
            return size_a * (size_a - 1) // 2
        return size_a * int(self.sizes[rep_b])

    def _loss_for(self, weight: float, count: int, pairs: int) -> float:
        if weight == 0.0:
            return 0.0
        spurious_cost = (pairs - count) * self._penalty
        if self._rule == "cheaper":
            return min(spurious_cost, weight)
        if 2 * count >= pairs:
            return spurious_cost
        return weight

    def pair_loss(self, key: int) -> float:
        weight = self._weight.get(key, 0.0)
        if weight == 0.0:
            return 0.0
        return self._loss_for(weight, self._count[key], self._block_pairs(key))

    def keeps_superedge(self, key: int) -> bool:
        weight = self._weight.get(key, 0.0)
        if weight == 0.0:
            return False
        count = self._count[key]
        pairs = self._block_pairs(key)
        if self._rule == "cheaper":
            return (pairs - count) * self._penalty <= weight
        return 2 * count >= pairs

    def merge_cost(self, rep_a: int, rep_b: int) -> float:
        """Exact change in total loss if ``rep_a``/``rep_b`` merge."""
        neighbors = (self.adjacent(rep_a) | self.adjacent(rep_b)) - {rep_a, rep_b}
        merged_size = int(self.sizes[rep_a]) + int(self.sizes[rep_b])

        cost = 0.0
        for other in neighbors:
            key_a = self.key_of(rep_a, other)
            key_b = self.key_of(rep_b, other)
            old = self.pair_loss(key_a) + self.pair_loss(key_b)
            weight = self._weight.get(key_a, 0.0) + self._weight.get(key_b, 0.0)
            count = self._count.get(key_a, 0) + self._count.get(key_b, 0)
            pairs = merged_size * int(self.sizes[other])
            cost += self._loss_for(weight, count, pairs) - old
        internal_keys = (
            self.key_of(rep_a, rep_a),
            self.key_of(rep_b, rep_b),
            self.key_of(rep_a, rep_b),
        )
        old = sum(self.pair_loss(key) for key in internal_keys)
        weight = sum(self._weight.get(key, 0.0) for key in internal_keys)
        count = sum(self._count.get(key, 0) for key in internal_keys)
        pairs = merged_size * (merged_size - 1) // 2
        cost += self._loss_for(weight, count, pairs) - old
        return cost

    def apply_merge(self, rep_a: int, rep_b: int, survivor: int) -> None:
        """Fold pair state after ``rep_a``/``rep_b`` merged into ``survivor``."""
        absorbed = rep_b if survivor == rep_a else rep_a
        neighbors = (self.adjacent(rep_a) | self.adjacent(rep_b)) - {rep_a, rep_b}
        internal_keys = (
            self.key_of(rep_a, rep_a),
            self.key_of(rep_b, rep_b),
            self.key_of(rep_a, rep_b),
        )

        # Remove old losses from the running total.
        for other in neighbors:
            for rep in (rep_a, rep_b):
                key = self.key_of(rep, other)
                if key in self._weight:
                    self.total_loss -= self._loss_cache.pop(key, 0.0)
        for key in internal_keys:
            if key in self._weight:
                self.total_loss -= self._loss_cache.pop(key, 0.0)

        # The merged supernode exists from here on; size lookups below
        # (pair_loss re-adds) must see the combined size.
        self.sizes[survivor] = self.sizes[rep_a] + self.sizes[rep_b]
        self.sizes[absorbed] = 0

        # Fold weights/counts into survivor-keyed entries.
        internal_weight = 0.0
        internal_count = 0
        for key in internal_keys:
            internal_weight += self._weight.pop(key, 0.0)
            internal_count += self._count.pop(key, 0)
        if internal_count:
            internal_key = self.key_of(survivor, survivor)
            self._weight[internal_key] = internal_weight
            self._count[internal_key] = internal_count

        for other in neighbors:
            weight = 0.0
            count = 0
            for rep in (rep_a, rep_b):
                key = self.key_of(rep, other)
                weight += self._weight.pop(key, 0.0)
                count += self._count.pop(key, 0)
            if count:
                key = self.key_of(survivor, other)
                self._weight[key] = weight
                self._count[key] = count

        # Rewire adjacency.
        for other in neighbors:
            self._adjacent.setdefault(other, set()).discard(rep_a)
            self._adjacent[other].discard(rep_b)
            self._adjacent[other].add(survivor)
        self._adjacent.pop(rep_a, None)
        self._adjacent.pop(rep_b, None)
        self._adjacent[survivor] = set(neighbors)

        # Re-add losses for the survivor's pairs.
        for other in neighbors:
            key = self.key_of(survivor, other)
            if key in self._weight:
                loss = self.pair_loss(key)
                self._loss_cache[key] = loss
                self.total_loss += loss
        internal_key = self.key_of(survivor, survivor)
        if internal_key in self._weight:
            loss = self.pair_loss(internal_key)
            self._loss_cache[internal_key] = loss
            self.total_loss += loss

    def live_pairs(self) -> List[int]:
        return list(self._weight)


class UDSSummarizer(EdgeShedder):
    """Utility-driven summarization with threshold ``τ_U = p``.

    Args:
        max_sweeps: upper bound on full merge sweeps (safety valve; the
            utility budget normally terminates earlier).
        superedge_rule: ``"majority"`` (density criterion, default) or
            ``"cheaper"`` — see :class:`_PairState`.
        num_betweenness_sources: sample size for the edge-utility
            computation (``None`` = exact betweenness, as in the paper).
        seed: randomness for the sweep order.
        engine: ``"array"`` (default) runs the merge loop over packed int
            pair keys with O(1) supernode-size lookups; ``"legacy"`` is
            the original frozenset implementation, kept as the oracle.
            The engines follow different candidate orders, so they agree
            statistically (same invariants, comparable merge counts and
            utilities) rather than bit-for-bit — see the module docstring.
    """

    name = "UDS"

    def __init__(
        self,
        max_sweeps: int = 50,
        superedge_rule: str = "majority",
        num_betweenness_sources: Optional[int] = None,
        seed: RandomState = None,
        engine: str = "array",
    ) -> None:
        if max_sweeps < 1:
            raise ValueError(f"max_sweeps must be >= 1, got {max_sweeps}")
        if engine not in ("array", "legacy"):
            raise ValueError(f"engine must be 'array' or 'legacy', got {engine!r}")
        self.max_sweeps = max_sweeps
        self.superedge_rule = superedge_rule
        self.num_betweenness_sources = num_betweenness_sources
        self.engine = engine
        self._seed = seed

    def _reduce(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        if self.engine == "array":
            return self._reduce_array(graph, p)
        return self._reduce_legacy(graph, p)

    # ------------------------------------------------------------------
    # Array engine
    # ------------------------------------------------------------------

    def _edge_utilities_ids(self, csr: CSRAdjacency, rng) -> np.ndarray:
        """Normalised edge utilities in lexicographic edge-id order.

        Same numbers :func:`edge_betweenness` produces (unnormalised
        scores halved, then scaled by the sampling factor) without the
        label-keyed dict round-trip.
        """
        source_ids, scale = select_source_ids(csr.num_nodes, self.num_betweenness_sources, rng)
        half = np.zeros(csr.indices.shape[0], dtype=np.float64)
        brandes_accumulate(csr, source_ids, edge_scores=half)
        forward, backward = csr.undirected_entries()
        totals = (half[forward] + half[backward]) * (scale / 2.0)
        total = float(totals.sum())
        if total <= 0.0:
            # Degenerate graphs (e.g. disjoint edges all with centrality 0
            # under sampling): fall back to uniform utilities.
            return np.full(totals.shape[0], 1.0 / totals.shape[0], dtype=np.float64)
        return totals / total

    @staticmethod
    def _best_array_candidate(
        state: _ArrayPairState, rep: int
    ) -> Optional[Tuple[int, float]]:
        """Cheapest 2-hop merge partner for ``rep`` (None if isolated).

        Candidates are scanned in ascending id order, so ties resolve
        deterministically without consulting the RNG.
        """
        one_hop = state.adjacent(rep) - {rep}
        two_hop: Set[int] = set()
        for neighbor in one_hop:
            two_hop |= state.adjacent(neighbor)
        candidates = (one_hop | two_hop) - {rep}
        best: Optional[Tuple[int, float]] = None
        for other in sorted(candidates):
            cost = state.merge_cost(rep, other)
            if best is None or cost < best[1]:
                best = (other, cost)
        return best

    def _reduce_array(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        rng = ensure_rng(self._seed)
        threshold = p  # τ_U = p per the paper's parameter settings

        csr = graph.csr()
        n = csr.num_nodes
        edge_u, edge_v = csr.canonical_edge_ids()
        utilities = self._edge_utilities_ids(csr, rng)
        spurious_penalty = 1.0 / graph.num_edges

        state = _ArrayPairState(
            n, edge_u, edge_v, utilities, spurious_penalty, rule=self.superedge_rule
        )
        budget = 1.0 - threshold
        alive = np.ones(n, dtype=bool)
        merge_log: List[Tuple[int, int]] = []

        merges = 0
        for _ in range(self.max_sweeps):
            merged_this_sweep = False
            reps = np.nonzero(alive)[0].tolist()
            rng.shuffle(reps)
            for rep in reps:
                if not alive[rep]:
                    continue  # absorbed earlier in this sweep
                candidate = self._best_array_candidate(state, rep)
                if candidate is None:
                    continue
                other, cost = candidate
                if state.total_loss + cost > budget:
                    continue
                # Weighted union, first argument wins ties — the same
                # survivor rule as GraphSummary.merge, so the replay
                # below reproduces these representatives exactly.
                survivor = rep if state.sizes[rep] >= state.sizes[other] else other
                absorbed = other if survivor == rep else rep
                state.apply_merge(rep, other, survivor)
                alive[absorbed] = False
                merge_log.append((rep, other))
                merges += 1
                merged_this_sweep = True
            if not merged_this_sweep:
                break

        # Replay the merge log into a GraphSummary for the result's stats;
        # identical merge order + survivor rule means the array engine's
        # representative ids map 1:1 onto the summary's representatives.
        labels = csr.labels
        summary = GraphSummary(graph)
        for rep_a, rep_b in merge_log:
            summary.merge(labels[rep_a], labels[rep_b])
        pairs = []
        for key in sorted(state.live_pairs()):
            if not state.keeps_superedge(key):
                continue
            rep_a, rep_b = divmod(key, n)
            pairs.append((labels[rep_a], labels[rep_b]))
        summary.set_superedges(pairs)

        reconstructed = summary.reconstruct()
        stats = {
            "summary": summary,
            "merges": merges,
            "num_supernodes": summary.num_supernodes,
            "num_superedges": len(pairs),
            "final_utility": 1.0 - state.total_loss,
            "threshold": threshold,
            "engine": "array",
        }
        return reconstructed, stats

    # ------------------------------------------------------------------
    # Legacy engine (the array engine's oracle)
    # ------------------------------------------------------------------

    def _reduce_legacy(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        rng = ensure_rng(self._seed)
        threshold = p  # τ_U = p per the paper's parameter settings

        centrality = edge_betweenness(
            graph,
            normalized=False,
            num_sources=self.num_betweenness_sources,
            seed=rng,
        )
        total = sum(centrality.values())
        if total <= 0:
            # Degenerate graphs (e.g. disjoint edges all with centrality 0
            # under sampling): fall back to uniform utilities.
            utilities = {edge: 1.0 / graph.num_edges for edge in centrality}
        else:
            utilities = {edge: value / total for edge, value in centrality.items()}
        spurious_penalty = 1.0 / graph.num_edges

        summary = GraphSummary(graph)
        state = _PairState(summary, utilities, spurious_penalty, rule=self.superedge_rule)
        budget = 1.0 - threshold  # how much loss we may accumulate

        merges = 0
        for _ in range(self.max_sweeps):
            merged_this_sweep = False
            reps = summary.supernodes()
            rng.shuffle(reps)
            for rep in reps:
                if summary.representative(rep) != rep:
                    continue  # absorbed earlier in this sweep
                candidate = self._best_candidate(state, summary, rep)
                if candidate is None:
                    continue
                other, cost = candidate
                if state.total_loss + cost > budget:
                    continue
                survivor = summary.merge(rep, other)
                state.apply_merge(rep, other, survivor)
                merges += 1
                merged_this_sweep = True
            if not merged_this_sweep:
                break

        kept = [key for key in state.live_pairs() if state.keeps_superedge(key)]
        pairs = []
        for key in kept:
            reps = tuple(key)
            pairs.append((reps[0], reps[0]) if len(reps) == 1 else (reps[0], reps[1]))
        summary.set_superedges(pairs)

        reconstructed = summary.reconstruct()
        stats = {
            "summary": summary,
            "merges": merges,
            "num_supernodes": summary.num_supernodes,
            "num_superedges": len(pairs),
            "final_utility": 1.0 - state.total_loss,
            "threshold": threshold,
            "engine": "legacy",
        }
        return reconstructed, stats

    @staticmethod
    def _best_candidate(
        state: _PairState, summary: GraphSummary, rep: Node
    ) -> Optional[Tuple[Node, float]]:
        """Cheapest 2-hop merge partner for ``rep`` (None if isolated)."""
        one_hop = state.adjacent(rep) - {rep}
        two_hop: Set[Node] = set()
        for neighbor in one_hop:
            two_hop |= state.adjacent(neighbor)
        candidates = (one_hop | two_hop) - {rep}
        best: Optional[Tuple[Node, float]] = None
        for other in candidates:
            cost = state.merge_cost(rep, other)
            if best is None or cost < best[1]:
                best = (other, cost)
        return best
