"""Supernode/superedge data model for grouping-based summarization.

UDS (Kumar & Efstathopoulos, VLDB 2019) represents a graph as a *summary*:
a partition of the original nodes into supernodes, plus superedges between
supernodes.  A superedge (A, B) asserts "every pair across A and B is
connected" (for A = B: "A is a clique"), so a summary is lossy in both
directions — it drops real edges not covered by any superedge and invents
spurious pairs inside covered blocks.

:class:`GraphSummary` owns the partition bookkeeping (union-find with
explicit member sets, since merge order is data-dependent) and can expand
itself back into a plain :class:`Graph` for the evaluation tasks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.errors import GraphError
from repro.graph.graph import Graph, Node

__all__ = ["GraphSummary"]


class GraphSummary:
    """A supernode partition of an original graph plus chosen superedges.

    Supernodes are identified by a representative original node; members
    are tracked explicitly so merges are O(smaller side).
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        #: original node -> representative of its supernode
        self._rep: Dict[Node, Node] = {node: node for node in graph.nodes()}
        #: representative -> member set
        self._members: Dict[Node, Set[Node]] = {node: {node} for node in graph.nodes()}
        #: chosen superedges as frozensets of 1 or 2 representatives
        self._superedges: Set[FrozenSet[Node]] = set()

    # ------------------------------------------------------------------
    # Partition bookkeeping
    # ------------------------------------------------------------------

    @property
    def graph(self) -> Graph:
        return self._graph

    def representative(self, node: Node) -> Node:
        return self._rep[node]

    def members(self, representative: Node) -> Set[Node]:
        """Member set of the supernode led by ``representative``."""
        if representative not in self._members:
            raise GraphError(f"{representative!r} is not a supernode representative")
        return set(self._members[representative])

    def supernodes(self) -> List[Node]:
        """Current representatives (insertion-order stable)."""
        return list(self._members)

    @property
    def num_supernodes(self) -> int:
        return len(self._members)

    def merge(self, a: Node, b: Node) -> Node:
        """Merge the supernodes containing ``a`` and ``b``; return the new rep.

        The larger side's representative survives (weighted union).
        """
        rep_a, rep_b = self._rep[a], self._rep[b]
        if rep_a == rep_b:
            raise GraphError(f"{a!r} and {b!r} are already in the same supernode")
        if len(self._members[rep_a]) < len(self._members[rep_b]):
            rep_a, rep_b = rep_b, rep_a
        absorbed = self._members.pop(rep_b)
        for node in absorbed:
            self._rep[node] = rep_a
        self._members[rep_a] |= absorbed
        # Superedges touching the absorbed representative follow the merge.
        stale = [se for se in self._superedges if rep_b in se]
        for se in stale:
            self._superedges.discard(se)
            replacement = frozenset(rep_a if r == rep_b else r for r in se)
            self._superedges.add(replacement)
        return rep_a

    # ------------------------------------------------------------------
    # Superedges
    # ------------------------------------------------------------------

    def set_superedges(self, pairs: Iterable[Tuple[Node, Node]]) -> None:
        """Replace the superedge set; each pair is (rep_a, rep_b), a==b ok."""
        superedges: Set[FrozenSet[Node]] = set()
        for a, b in pairs:
            if a not in self._members or b not in self._members:
                raise GraphError(f"({a!r}, {b!r}) references a non-representative")
            superedges.add(frozenset((a, b)))
        self._superedges = superedges

    def superedges(self) -> List[Tuple[Node, Node]]:
        """Superedges as (rep, rep) tuples; self-superedges repeat the rep."""
        result = []
        for se in self._superedges:
            items = sorted(se, key=lambda r: str(r))
            if len(items) == 1:
                result.append((items[0], items[0]))
            else:
                result.append((items[0], items[1]))
        return result

    # ------------------------------------------------------------------
    # Pair coverage and reconstruction
    # ------------------------------------------------------------------

    def block_pairs(self, rep_a: Node, rep_b: Node) -> int:
        """Number of distinct node pairs the superedge (rep_a, rep_b) covers."""
        size_a = len(self._members[rep_a])
        if rep_a == rep_b:
            return size_a * (size_a - 1) // 2
        return size_a * len(self._members[rep_b])

    def actual_edges_between(self, rep_a: Node, rep_b: Node) -> int:
        """Original edges with one endpoint in each supernode (or inside one)."""
        members_a = self._members[rep_a]
        if rep_a == rep_b:
            count = 0
            for node in members_a:
                for neighbor in self._graph.neighbors(node):
                    if neighbor in members_a:
                        count += 1
            return count // 2
        members_b = self._members[rep_b]
        small, large = (
            (members_a, members_b)
            if len(members_a) <= len(members_b)
            else (members_b, members_a)
        )
        count = 0
        for node in small:
            for neighbor in self._graph.neighbors(node):
                if neighbor in large:
                    count += 1
        return count

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready representation (supernode membership + superedges).

        The original graph itself is not embedded — a summary is only
        meaningful next to its graph, which the caller already has.
        """
        return {
            "supernodes": [
                {"representative": rep, "members": sorted(self._members[rep], key=str)}
                for rep in self._members
            ],
            "superedges": [list(pair) for pair in self.superedges()],
        }

    @classmethod
    def from_dict(cls, graph: Graph, payload: dict) -> "GraphSummary":
        """Rebuild a summary over ``graph`` from :meth:`to_dict` output."""
        if "supernodes" not in payload or "superedges" not in payload:
            raise GraphError("payload is not a GraphSummary dict")
        summary = cls(graph)
        for entry in payload["supernodes"]:
            representative = entry["representative"]
            for member in entry["members"]:
                if member != representative and summary.representative(member) != summary.representative(representative):
                    summary.merge(representative, member)
        # Re-point superedges at current representatives (merge order may
        # have changed which member leads each supernode).
        pairs = []
        for a, b in payload["superedges"]:
            pairs.append((summary.representative(a), summary.representative(b)))
        summary.set_superedges(pairs)
        return summary

    def reconstruct(self) -> Graph:
        """Expand the summary into a plain graph on the original node set.

        Every superedge becomes the complete bipartite (or clique) expansion
        of its blocks.  Edges of the original graph not covered by any
        superedge are lost — this is the lossy reconstruction the evaluation
        tasks consume.
        """
        expanded = Graph(nodes=self._graph.nodes())
        for rep_a, rep_b in self.superedges():
            members_a = sorted(self._members[rep_a], key=str)
            if rep_a == rep_b:
                for i, u in enumerate(members_a):
                    for v in members_a[i + 1 :]:
                        expanded.add_edge(u, v)
            else:
                members_b = self._members[rep_b]
                for u in members_a:
                    for v in members_b:
                        expanded.add_edge(u, v)
        return expanded
