"""Seeded generators for uncertain (probability-weighted) graphs.

Real uncertain-graph datasets attach an existence probability to every
edge (protein interaction confidences, link-prediction scores, sensor
reliability).  None are redistributable here, so the evaluation draws
weights onto the same seeded synthetic topologies the unweighted
benchmarks use: the topology generator and the weight draw are seeded
independently, letting a test hold the topology fixed while varying the
probability field (or vice versa).
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graph.generators import erdos_renyi, powerlaw_cluster
from repro.graph.graph import Graph
from repro.rng import RandomState, ensure_rng

__all__ = [
    "attach_random_weights",
    "uncertain_erdos_renyi",
    "uncertain_powerlaw_cluster",
]


def attach_random_weights(
    graph: Graph,
    seed: RandomState = None,
    low: float = 0.05,
    high: float = 1.0,
) -> Graph:
    """Attach i.i.d. uniform ``[low, high)`` probabilities to every edge.

    Weights are drawn in canonical edge order (one ``rng.uniform`` per
    edge), so a fixed seed gives every edge the same probability across
    runs regardless of how the graph was built.  The graph is modified in
    place and returned; ``low > 0`` keeps every edge a live candidate.
    """
    if not 0.0 <= low <= high <= 1.0:
        raise GraphError(
            f"need 0 <= low <= high <= 1 for probabilities, got [{low}, {high})"
        )
    rng = ensure_rng(seed)
    for u, v in list(graph.edges()):
        graph.set_edge_weight(u, v, float(rng.uniform(low, high)))
    return graph


def uncertain_erdos_renyi(
    n: int,
    probability: float,
    seed: RandomState = None,
    weight_seed: RandomState = None,
    low: float = 0.05,
    high: float = 1.0,
) -> Graph:
    """G(n, p) topology with uniform ``[low, high)`` edge probabilities.

    ``seed`` drives the topology, ``weight_seed`` the probability field
    (defaults to a fresh stream from ``seed``'s generator when ``None``,
    i.e. both draws come off one seeded stream).
    """
    rng = ensure_rng(seed)
    graph = erdos_renyi(n, probability, seed=rng)
    weight_rng = rng if weight_seed is None else ensure_rng(weight_seed)
    return attach_random_weights(graph, seed=weight_rng, low=low, high=high)


def uncertain_powerlaw_cluster(
    n: int,
    m: int,
    triangle_probability: float,
    seed: RandomState = None,
    weight_seed: RandomState = None,
    low: float = 0.05,
    high: float = 1.0,
) -> Graph:
    """Holme–Kim topology (heavy-tailed, clustered) with random probabilities.

    The uncertain counterpart of the dataset surrogates
    (:mod:`repro.datasets`): same topology generator, plus a seeded
    probability field.
    """
    rng = ensure_rng(seed)
    graph = powerlaw_cluster(n, m, triangle_probability, seed=rng)
    weight_rng = rng if weight_seed is None else ensure_rng(weight_seed)
    return attach_random_weights(graph, seed=weight_rng, low=low, high=high)
