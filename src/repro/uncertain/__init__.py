"""Uncertain/weighted graph shedding: probability-aware reduction.

An *uncertain graph* attaches an existence probability ``w(e) ∈ [0, 1]``
to every edge; a node's natural size there is its **expected degree**
``E[deg(u)] = Σ w(e)``.  This package generalises the paper's
degree-preserving shedding to that model:

* :class:`WeightedCRRShedder` / :class:`WeightedBM2Shedder` — the two
  algorithms re-targeted at ``Σ|E[deg_G'(u)] − p·E[deg_G(u)]|``, built on
  the same id-space cores as the unweighted engines (``weighted=True``);
  with all weights 1.0 they reproduce the unweighted reductions bit for
  bit.
* :func:`expected_degree_distance` — the weighted quality metric (``Δ_E``),
  collapsing to the paper's ``Δ`` on unweighted graphs.
* seeded uncertain-graph generators for evaluation
  (:func:`uncertain_erdos_renyi`, :func:`uncertain_powerlaw_cluster`,
  :func:`attach_random_weights`).

Weighted inputs come from ``read_edge_list(path, weight_col=2)``
(:mod:`repro.graph.io`), the generators here, or ``Graph.add_edge(u, v,
weight=...)`` directly.
"""

from repro.uncertain.generators import (
    attach_random_weights,
    uncertain_erdos_renyi,
    uncertain_powerlaw_cluster,
)
from repro.uncertain.metrics import (
    expected_degree_array,
    expected_degree_distance,
    total_edge_mass,
)
from repro.uncertain.shedders import WeightedBM2Shedder, WeightedCRRShedder

__all__ = [
    "WeightedCRRShedder",
    "WeightedBM2Shedder",
    "expected_degree_array",
    "expected_degree_distance",
    "total_edge_mass",
    "attach_random_weights",
    "uncertain_erdos_renyi",
    "uncertain_powerlaw_cluster",
]
