"""Quality metrics for uncertain (probability-weighted) shedding.

The paper's degree discrepancy ``Δ = Σ|deg_G'(u) − p·deg_G(u)|`` measures
how well a reduction preserves *edge counts* per node.  On an uncertain
graph — where edge ``e`` exists with probability ``w(e)`` — the natural
analogue is *expected degree*: ``E[deg_G(u)] = Σ_{e ∋ u} w(e)``, and the
quantity a probability-aware shedder minimises is the **expected-degree
distance**

    Δ_E = Σ_u |E[deg_G'(u)] − p·E[deg_G(u)]|.

On an unweighted graph every weight is 1 and ``Δ_E`` collapses to ``Δ``
(:func:`repro.core.discrepancy.compute_delta`) exactly — same per-node
terms, same summation order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidRatioError
from repro.graph.graph import Graph

__all__ = [
    "expected_degree_array",
    "expected_degree_distance",
    "total_edge_mass",
]


def expected_degree_array(graph: Graph) -> np.ndarray:
    """``float64`` expected degrees in the graph's CSR id order.

    ``E[deg(u)] = Σ w(e)`` over incident edges; plain degrees (as floats)
    on an unweighted graph.
    """
    return graph.csr().weighted_degree_array()


def total_edge_mass(graph: Graph) -> float:
    """Total probability mass ``Σ_e w(e)`` (``|E|`` when unweighted)."""
    if not graph.is_weighted:
        return float(graph.num_edges)
    return float(graph.csr().edge_weights_array().sum())


def expected_degree_distance(original: Graph, reduced: Graph, p: float) -> float:
    """``Δ_E`` of ``reduced`` against ``original`` and ratio ``p``.

    ``reduced`` must be a subgraph of ``original`` node-wise (nodes absent
    from it count as expected degree 0, mirroring
    :func:`~repro.core.discrepancy.compute_delta`).  Weights are read from
    each graph independently, so a weight-blind reduction of a weighted
    original is scored on the weights its kept edges carry.
    """
    if not 0.0 < p < 1.0:
        raise InvalidRatioError(p)
    csr = original.csr()
    reduced_mass = np.fromiter(
        (
            reduced.weighted_degree(node) if reduced.has_node(node) else 0.0
            for node in csr.labels
        ),
        dtype=np.float64,
        count=csr.num_nodes,
    )
    terms = np.abs(reduced_mass - p * csr.weighted_degree_array())
    # Python sum in id order: bit-identical to compute_delta's scalar loop
    # when both graphs are unweighted.
    return float(sum(terms.tolist()))
