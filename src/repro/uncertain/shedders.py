"""Probability-aware shedders: CRR and BM2 over expected-degree mass.

Both algorithms carry over to uncertain graphs by replacing every unit of
degree with an edge's existence probability: a node's expectation becomes
``p·E[deg_G(u)]``, Phase-1 capacities round expected mass, and every
Δ-change in the rewiring/repair loops moves endpoints by the edge's
weight.  The weighted id cores (:func:`repro.core.crr.crr_reduce_ids`,
:func:`repro.core.bm2.bm2_reduce_ids` with ``weighted=True``) implement
exactly that, and with all weights 1.0 they degenerate bit-identically to
the unweighted engines — so these classes are strict generalisations of
:class:`~repro.core.crr.CRRShedder` / :class:`~repro.core.bm2.BM2Shedder`,
not forks.

The weight-blind counterparts remain the natural baseline: run
``BM2Shedder`` on the same weighted graph and compare
:func:`repro.uncertain.metrics.expected_degree_distance` — the weighted
shedders are strictly better at equal ``p`` on probabilistic inputs (the
property suite pins this on seeded ER graphs).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.base import EdgeShedder
from repro.core.bm2 import _ROUNDING_RULES, bm2_reduce_ids
from repro.core.crr import crr_reduce_ids
from repro.graph.graph import Graph
from repro.rng import RandomState, ensure_rng

__all__ = ["WeightedBM2Shedder", "WeightedCRRShedder"]


class WeightedCRRShedder(EdgeShedder):
    """CRR whose rewiring minimises *expected-degree* discrepancy.

    Phase 1 is unchanged (betweenness is a topological signal); Phase 2
    accepts a swap iff it lowers ``Σ|E[deg_G'(v)] − p·E[deg_G(v)]|``.
    Accepts unweighted graphs too, where it reproduces
    ``CRRShedder(engine="array")`` bit for bit.

    Args:
        steps: explicit rewiring iterations; ``None`` uses ``[steps_factor·P]``.
        steps_factor: the ``x`` in ``steps = [x·P]`` (paper: 10).
        num_betweenness_sources: sampled-estimator mode for Phase 1.
        importance: ``"betweenness"`` (default) or ``"random"``.
        seed: randomness for ranking ties and swap sampling.
    """

    name = "W-CRR"

    def __init__(
        self,
        steps: Optional[int] = None,
        steps_factor: float = 10.0,
        num_betweenness_sources: Optional[int] = None,
        importance: str = "betweenness",
        seed: RandomState = None,
    ) -> None:
        if steps is not None and steps < 0:
            raise ValueError(f"steps must be non-negative, got {steps}")
        if steps_factor < 0:
            raise ValueError(f"steps_factor must be non-negative, got {steps_factor}")
        if importance not in ("betweenness", "random"):
            raise ValueError(
                f"importance must be 'betweenness' or 'random', got {importance!r}"
            )
        self.steps = steps
        self.steps_factor = steps_factor
        self.num_betweenness_sources = num_betweenness_sources
        self.importance = importance
        self._seed = seed

    def _reduce(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        csr = graph.csr()
        stats: Dict[str, Any] = {
            "initial_ranking": self.importance,
            "engine": "array",
            "weighted": True,
        }
        kept_u, kept_v = crr_reduce_ids(
            csr,
            p,
            ensure_rng(self._seed),
            stats,
            steps=self.steps,
            steps_factor=self.steps_factor,
            importance=self.importance,
            num_sources=self.num_betweenness_sources,
            weighted=True,
        )
        return csr.subgraph_from_edge_ids(kept_u, kept_v), stats


class WeightedBM2Shedder(EdgeShedder):
    """BM2 in probability mass: weighted b-matching + weighted repair heap.

    Capacities are ``p·E[deg_G(u)]`` rounded; Phase 1 admits an edge when
    both endpoints can absorb its weight; Phase 2 repairs with the
    weighted Algorithm 3 (:func:`repro.core.bm2.weighted_bipartite_repair_ids`).
    Accepts unweighted graphs too, where it reproduces
    ``BM2Shedder(engine="array")`` bit for bit.

    Args:
        rounding: capacity rounding rule (see :class:`~repro.core.bm2.BM2Shedder`).
        accept_zero_gain: whether the repair keeps zero-gain edges.
        shuffle_edges: randomise Phase 1's scan order (ablation).
        sparsify: ``"off"`` or ``"edcs"`` candidate pruning before repair.
        sparsify_beta: EDCS degree bound ``β`` (``None`` = derived default).
        seed: randomness for ``shuffle_edges``.
    """

    name = "W-BM2"

    def __init__(
        self,
        rounding: str = "half_up",
        accept_zero_gain: bool = False,
        shuffle_edges: bool = False,
        sparsify: str = "off",
        sparsify_beta: "int | None" = None,
        seed: RandomState = None,
    ) -> None:
        if rounding not in _ROUNDING_RULES:
            raise ValueError(
                f"rounding must be one of {sorted(_ROUNDING_RULES)}, got {rounding!r}"
            )
        if sparsify not in ("off", "edcs"):
            raise ValueError(f"sparsify must be 'off' or 'edcs', got {sparsify!r}")
        if sparsify_beta is not None and sparsify_beta < 1:
            raise ValueError(f"sparsify_beta must be positive, got {sparsify_beta}")
        self.rounding = rounding
        self.accept_zero_gain = accept_zero_gain
        self.shuffle_edges = shuffle_edges
        self.sparsify = sparsify
        self.sparsify_beta = sparsify_beta
        self._seed = seed

    def _reduce(self, graph: Graph, p: float) -> Tuple[Graph, Dict[str, Any]]:
        csr = graph.csr()
        stats: Dict[str, Any] = {
            "capacity_rounding": self.rounding,
            "engine": "array",
            "weighted": True,
        }
        kept_u, kept_v = bm2_reduce_ids(
            csr,
            p,
            stats,
            rounding=self.rounding,
            accept_zero_gain=self.accept_zero_gain,
            shuffle_edges=self.shuffle_edges,
            seed=self._seed,
            sparsify=self.sparsify,
            sparsify_beta=self.sparsify_beta,
            weighted=True,
        )
        return csr.subgraph_from_edge_ids(kept_u, kept_v), stats
