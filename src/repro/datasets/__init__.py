"""Dataset surrogates for the paper's four SNAP networks."""

from repro.datasets.registry import (
    DATASETS,
    available_datasets,
    dataset_spec,
    load_dataset,
)
from repro.datasets.synthetic import SurrogateSpec, build_surrogate

__all__ = [
    "DATASETS",
    "available_datasets",
    "dataset_spec",
    "load_dataset",
    "SurrogateSpec",
    "build_surrogate",
]
