"""Named dataset registry.

``load_dataset("ca-grqc")`` returns the seeded surrogate for that SNAP
dataset at its default scale; pass ``scale=1.0`` for a full-size build or
a smaller value for quick experiments.  Every surrogate is deterministic
for a given ``(name, scale, seed)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets.synthetic import SurrogateSpec, build_surrogate
from repro.errors import DatasetError
from repro.graph.graph import Graph
from repro.rng import RandomState

__all__ = ["DATASETS", "available_datasets", "dataset_spec", "load_dataset"]

#: The four evaluation datasets (paper Table II), as surrogate recipes.
#: ``attachment`` is chosen so the surrogate's average degree (≈ 2m)
#: matches the original's ``2|E|/|V|``; triangle probability is high for
#: the collaboration networks (which are clique-heavy) and lower for the
#: communication/social graphs.
DATASETS: Dict[str, SurrogateSpec] = {
    spec.key: spec
    for spec in (
        SurrogateSpec(
            key="ca-grqc",
            description="Collaboration network (general relativity)",
            paper_nodes=5242,
            paper_edges=14496,
            attachment=3,  # original average degree 5.53
            triangle_probability=0.7,
            default_scale=0.25,
        ),
        SurrogateSpec(
            key="ca-hepph",
            description="Collaboration network (high-energy physics)",
            paper_nodes=12008,
            paper_edges=118521,
            attachment=10,  # original average degree 19.74
            triangle_probability=0.7,
            default_scale=0.08,
        ),
        SurrogateSpec(
            key="email-enron",
            description="Email communication network",
            paper_nodes=36692,
            paper_edges=183831,
            attachment=5,  # original average degree 10.02
            triangle_probability=0.3,
            default_scale=0.03,
        ),
        SurrogateSpec(
            key="com-livejournal",
            description="Online social network",
            paper_nodes=3_997_962,
            paper_edges=34_681_189,
            attachment=9,  # original average degree 17.35
            triangle_probability=0.4,
            default_scale=0.002,
        ),
    )
}


def available_datasets() -> List[str]:
    """Registry keys in the paper's Table II order."""
    return list(DATASETS)


def dataset_spec(name: str) -> SurrogateSpec:
    """Spec for ``name``; raises :class:`DatasetError` for unknown names."""
    try:
        return DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from None


def load_dataset(
    name: str,
    scale: Optional[float] = None,
    seed: RandomState = 0,
    weighted: bool = False,
) -> Graph:
    """Build the surrogate for ``name``.

    ``scale`` multiplies the paper's node count (default: the spec's
    laptop-friendly scale).  ``seed`` fixes the construction; the default
    0 gives every caller the same graph.  ``weighted=True`` attaches a
    seeded uniform probability field to the same topology (the uncertain
    variant, :mod:`repro.uncertain`) — the topology is identical to the
    unweighted build for the same ``(name, scale, seed)``.
    """
    spec = dataset_spec(name)
    if scale is None:
        scale = spec.default_scale
    graph = build_surrogate(spec, scale=scale, seed=seed)
    if weighted:
        from repro.rng import ensure_rng, spawn
        from repro.uncertain.generators import attach_random_weights

        # Weight draw on its own derived stream so the topology stays
        # exactly the unweighted build's.
        attach_random_weights(graph, seed=spawn(ensure_rng(seed), 1)[0])
    return graph
