"""Synthetic surrogate construction for the paper's SNAP datasets.

The evaluation uses four real networks (ca-GrQc, ca-HepPh, email-Enron,
com-LiveJournal) that we cannot download in this offline environment.  The
algorithms and all seven tasks consume *topology only*, so each dataset is
substituted by a seeded synthetic graph matched on the properties that
drive the experiments: node count (scaled), average degree, a heavy-tailed
degree distribution, and — for the collaboration networks — high
clustering.  The Holme–Kim powerlaw-cluster model provides all three knobs.

See DESIGN.md §2 for the substitution table and rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.errors import DatasetError
from repro.graph.generators import powerlaw_cluster
from repro.graph.graph import Graph
from repro.rng import RandomState

__all__ = ["SurrogateSpec", "build_surrogate"]


@dataclass(frozen=True)
class SurrogateSpec:
    """Recipe for one dataset surrogate.

    Attributes:
        key: registry name (``"ca-grqc"``, ...).
        description: the paper's dataset description.
        paper_nodes / paper_edges: the original SNAP sizes (Table II).
        attachment: Holme–Kim ``m`` — controls average degree (≈ 2m).
        triangle_probability: Holme–Kim closure — controls clustering.
        default_scale: default node-count scale for laptop-speed runs.
    """

    key: str
    description: str
    paper_nodes: int
    paper_edges: int
    attachment: int
    triangle_probability: float
    default_scale: float


def build_surrogate(spec: SurrogateSpec, scale: float, seed: RandomState) -> Graph:
    """Materialise ``spec`` at ``scale`` times the paper's node count."""
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    n = max(spec.attachment + 2, round(spec.paper_nodes * scale))
    return powerlaw_cluster(
        n,
        m=spec.attachment,
        triangle_probability=spec.triangle_probability,
        seed=seed,
    )
