"""Report persistence and markdown rendering.

BenchReports serialise to JSON (for archival and regression diffing) and
render to GitHub-flavoured markdown tables (for RESULTS.md).  The
``scripts/generate_experiments.py`` driver uses both.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.bench.harness import BenchReport
from repro.bench.tables import format_cell
from repro.errors import BenchError

__all__ = [
    "report_to_dict",
    "report_from_dict",
    "save_report_json",
    "load_report_json",
    "render_markdown",
]

PathLike = Union[str, Path]


def report_to_dict(report: BenchReport) -> dict:
    """JSON-ready representation of a report."""
    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "headers": list(report.headers),
        "rows": [list(row) for row in report.rows],
        "notes": list(report.notes),
    }


def report_from_dict(payload: dict) -> BenchReport:
    """Inverse of :func:`report_to_dict`."""
    required = {"experiment_id", "title", "headers", "rows"}
    missing = required - payload.keys()
    if missing:
        raise BenchError(f"report payload missing keys: {sorted(missing)}")
    return BenchReport(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        headers=list(payload["headers"]),
        rows=[list(row) for row in payload["rows"]],
        notes=list(payload.get("notes", [])),
    )


def save_report_json(report: BenchReport, path: PathLike) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report_to_dict(report), handle, indent=2)


def load_report_json(path: PathLike) -> BenchReport:
    with open(path, "r", encoding="utf-8") as handle:
        return report_from_dict(json.load(handle))


def render_markdown(report: BenchReport, precision: int = 3) -> str:
    """GitHub-flavoured markdown table with title heading and notes."""
    lines: List[str] = [f"### {report.title}", ""]
    lines.append("| " + " | ".join(report.headers) + " |")
    lines.append("|" + "|".join("---" for _ in report.headers) + "|")
    for row in report.rows:
        cells = [format_cell(cell, precision) for cell in row]
        lines.append("| " + " | ".join(cells) + " |")
    for note in report.notes:
        lines.append("")
        lines.append(f"*{note}*")
    return "\n".join(lines)
