"""Benchmark harness reproducing every table and figure of the paper."""

from repro.bench.harness import (
    BenchReport,
    ReductionCache,
    default_shedders,
    full_scales,
    quick_scales,
)
from repro.bench.memory import MemoryMeasurement, measure_peak_memory
from repro.bench.reporting import (
    load_report_json,
    render_markdown,
    report_from_dict,
    report_to_dict,
    save_report_json,
)
from repro.bench.tables import format_cell, render_table

__all__ = [
    "BenchReport",
    "ReductionCache",
    "default_shedders",
    "quick_scales",
    "full_scales",
    "render_table",
    "format_cell",
    "measure_peak_memory",
    "MemoryMeasurement",
    "report_to_dict",
    "report_from_dict",
    "save_report_json",
    "load_report_json",
    "render_markdown",
]
