"""Peak-memory instrumentation for reduction runs.

The paper's motivation is reduction under *resource constraints* — and
memory, not time, is usually the hard wall on a laptop.  This module
measures the peak Python heap allocation of a callable with
``tracemalloc`` so the benchmarks can compare the methods' working-set
sizes (UDS's pair bookkeeping vs CRR's edge pools vs BM2's counters vs
the streaming shedder's O(|V|) tables).

tracemalloc tracks Python-level allocations only (numpy buffers included,
C-internal scratch excluded) and slows execution noticeably, so this is
a measurement harness, not something to wrap production calls in.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["MemoryMeasurement", "measure_peak_memory"]


@dataclass(frozen=True)
class MemoryMeasurement:
    """Result of one instrumented call."""

    value: Any
    peak_bytes: int
    allocated_bytes: int

    @property
    def peak_mib(self) -> float:
        return self.peak_bytes / (1024 * 1024)


def measure_peak_memory(fn: Callable[[], Any]) -> MemoryMeasurement:
    """Run ``fn`` under tracemalloc; return its value and peak allocation.

    Nested calls are not supported (tracemalloc is process-global); a
    ``RuntimeError`` is raised if tracing is already active so a broken
    caller fails loudly instead of producing garbage numbers.
    """
    if tracemalloc.is_tracing():
        raise RuntimeError("measure_peak_memory does not support nesting")
    tracemalloc.start()
    try:
        value = fn()
        current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return MemoryMeasurement(value=value, peak_bytes=peak, allocated_bytes=current)
