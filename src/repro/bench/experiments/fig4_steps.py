"""Figure 4 — CRR rewiring-steps sweep.

Sweeps ``steps = [x·P]`` on the ca-GrQc and ca-HepPh surrogates and reports
the average Δ (reduction quality) and wall-clock time per ``x``.  The
paper's finding: quality improves sharply up to ``x ≈ 4``, flattens past
``x ≈ 10`` — which motivates the default ``steps = [10·P]``.
"""

from __future__ import annotations

from repro.bench.harness import BenchReport, ReductionCache, quick_scales
from repro.core.crr import CRRShedder

__all__ = ["run"]

_DATASETS = ("ca-grqc", "ca-hepph")


def run(quick: bool = True, seed: int = 0, p: float = 0.5) -> BenchReport:
    """Figure 4: sweep steps = [x*P] and report avg delta + time."""
    scales = quick_scales() if quick else {name: None for name in _DATASETS}
    factors = (0, 1, 2, 4, 7, 10, 13) if quick else (0, 1, 2, 4, 7, 10, 13, 16)
    sources = 64 if quick else 256
    cache = ReductionCache(seed=seed)

    headers = ["x (steps = [x*P])"]
    for dataset in _DATASETS:
        headers += [f"{dataset} avg delta", f"{dataset} time (s)"]

    rows = []
    for x in factors:
        row: list[object] = [x]
        for dataset in _DATASETS:
            graph = cache.graph(dataset, scales.get(dataset))
            shedder = CRRShedder(
                steps_factor=float(x), num_betweenness_sources=sources, seed=seed
            )
            result = shedder.reduce(graph, p)
            row += [result.average_delta, result.elapsed_seconds]
        rows.append(row)

    return BenchReport(
        experiment_id="fig4",
        title=f"Figure 4 — performances of steps (p={p})",
        headers=headers,
        rows=rows,
        notes=[
            "paper shape: avg delta drops sharply for x > 4 and flattens past x ~ 10;"
            " time grows roughly linearly in x",
        ],
    )
