"""Figure 5(a)-(b) — measured average Δ vs the Theorem 1/2 bounds.

Sweeps ``p`` on the ca-GrQc surrogate, measuring the average absolute
degree discrepancy of CRR and BM2 against the theoretical upper bounds.
Paper shape: the bounds are loose, but measured errors are tiny (below 1
for every ``p``) and always within bound.
"""

from __future__ import annotations

from repro.bench.harness import BenchReport, ReductionCache, default_shedders, quick_scales
from repro.core.bounds import bm2_bound_for_graph, crr_bound_for_graph

__all__ = ["run"]

_DATASET = "ca-grqc"


def run(quick: bool = True, seed: int = 0) -> BenchReport:
    """Figure 5(a)-(b): measured average delta vs the Theorem 1/2 bounds."""
    scales = quick_scales() if quick else {_DATASET: None}
    p_grid = (0.9, 0.7, 0.5, 0.3, 0.1) if quick else tuple(
        round(0.9 - 0.1 * i, 1) for i in range(9)
    )
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=64 if quick else 256)
    graph = cache.graph(_DATASET, scales.get(_DATASET))

    headers = ["p", "CRR avg delta", "CRR bound (Thm 1)", "BM2 avg delta", "BM2 bound (Thm 2)"]
    rows = []
    for p in p_grid:
        crr = cache.reduce(_DATASET, scales.get(_DATASET), "CRR", shedders["CRR"], p)
        bm2 = cache.reduce(_DATASET, scales.get(_DATASET), "BM2", shedders["BM2"], p)
        rows.append(
            [
                p,
                crr.average_delta,
                crr_bound_for_graph(graph, p),
                bm2.average_delta,
                bm2_bound_for_graph(graph, p),
            ]
        )

    return BenchReport(
        experiment_id="fig5ab",
        title="Figure 5(a)-(b) — measured average delta vs theoretical bounds (ca-GrQc)",
        headers=headers,
        rows=rows,
        notes=["paper shape: measured error < 1 for all p and always within bound"],
    )
