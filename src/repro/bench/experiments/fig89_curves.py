"""Figures 8 and 9 — betweenness centrality and clustering coefficient
versus vertex degree.

Per-degree-bin mean curves for the original graph and each reduction.
Paper shape (Fig 8): CRR/BM2 estimate low-degree vertices' betweenness
accurately and beat UDS overall.  (Fig 9): CRR/BM2 accurate at large
``p``; at small ``p`` CRR leads on ca-GrQc/email-Enron and BM2 on ca-HepPh.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.harness import BenchReport, ReductionCache, default_shedders, quick_scales
from repro.tasks.base import GraphTask
from repro.tasks.betweenness import BetweennessCentralityTask
from repro.tasks.clustering import ClusteringCoefficientTask

__all__ = ["run_betweenness", "run_clustering"]

_DATASETS = ("ca-grqc", "ca-hepph", "email-enron")
_METHODS = ("UDS", "CRR", "BM2")


def _run(task_factory: Callable[[], GraphTask], experiment_id: str, title: str,
         quick: bool, seed: int, p: float) -> BenchReport:
    scales = quick_scales() if quick else {name: None for name in _DATASETS}
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=64 if quick else 256)
    task = task_factory()

    headers = ["dataset", "degree bin", "initial"] + list(_METHODS)
    rows = []
    for dataset in _DATASETS:
        graph = cache.graph(dataset, scales.get(dataset))
        curves = {"initial": task.compute(graph, scale=1.0).value}
        for method in _METHODS:
            result = cache.reduce(dataset, scales.get(dataset), method, shedders[method], p)
            curves[method] = task.compute_for_result(result).value
        bins = sorted(set().union(*(set(c) for c in curves.values())))
        for bin_edge in bins:
            rows.append(
                [dataset, bin_edge]
                + [curves[series].get(bin_edge) for series in ["initial", *_METHODS]]
            )
    return BenchReport(
        experiment_id=experiment_id, title=title, headers=headers, rows=rows
    )


def run_betweenness(quick: bool = True, seed: int = 0, p: float = 0.3) -> BenchReport:
    """Figure 8 — mean betweenness centrality per degree bin."""
    sources = 64 if quick else 256
    report = _run(
        lambda: BetweennessCentralityTask(num_sources=sources, seed=seed),
        "fig8",
        f"Figure 8 — betweenness centrality vs vertex degree (p={p})",
        quick,
        seed,
        p,
    )
    report.notes.append("paper shape: CRR/BM2 accurate at low degrees and beat UDS overall")
    return report


def run_clustering(quick: bool = True, seed: int = 0, p: float = 0.3) -> BenchReport:
    """Figure 9 — mean clustering coefficient per degree bin."""
    report = _run(
        ClusteringCoefficientTask,
        "fig9",
        f"Figure 9 — clustering coefficient vs vertex degree (p={p})",
        quick,
        seed,
        p,
    )
    report.notes.append("paper shape: CRR/BM2 track the original curve better than UDS")
    return report
