"""Table III — graph reduction time (seconds).

Reduction wall-clock for UDS, CRR and BM2 on all four dataset surrogates
over the ``p`` grid.  Paper shape: BM2 ≪ CRR ≪ UDS everywhere; UDS's time
explodes as ``p`` shrinks (more merging work) while CRR/BM2 stay flat;
UDS cannot finish com-LiveJournal at all (we skip it there, as the paper
had to).
"""

from __future__ import annotations

from repro.bench.harness import (
    BenchReport,
    ReductionCache,
    default_shedders,
    quick_scales,
)

__all__ = ["run"]

_DATASETS = ("ca-grqc", "ca-hepph", "email-enron", "com-livejournal")
_METHODS = ("UDS", "CRR", "BM2")


def run(quick: bool = True, seed: int = 0) -> BenchReport:
    """Table III: reduction wall-clock for UDS/CRR/BM2 on all datasets."""
    scales = quick_scales() if quick else {name: None for name in _DATASETS}
    p_grid = (0.9, 0.5, 0.1) if quick else tuple(round(0.9 - 0.1 * i, 1) for i in range(9))
    sources = 64 if quick else 256
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=sources)

    headers = ["p"] + [
        f"{dataset}/{method}" for dataset in _DATASETS for method in _METHODS
    ]
    rows = []
    for p in p_grid:
        row: list[object] = [p]
        for dataset in _DATASETS:
            for method in _METHODS:
                if dataset == "com-livejournal" and method == "UDS":
                    row.append(None)  # paper: UDS cannot finish this dataset
                    continue
                result = cache.reduce(dataset, scales.get(dataset), method, shedders[method], p)
                row.append(result.elapsed_seconds)
        rows.append(row)

    return BenchReport(
        experiment_id="tab3",
        title="Table III — graph reduction time (sec)",
        headers=headers,
        rows=rows,
        notes=[
            "paper shape: BM2 << CRR << UDS; UDS grows as p shrinks; UDS is"
            " skipped on com-livejournal (could not finish in the paper either)",
        ],
    )
