"""Figure 10 — hop-plot distributions.

Fraction of reachable pairs within k hops for the original graph and each
reduction on the three small/medium datasets.  Paper shape: all three
methods track the original curve reasonably, with small deviations in
different regions.
"""

from __future__ import annotations

from repro.bench.harness import BenchReport, ReductionCache, default_shedders, quick_scales
from repro.tasks.hopplot import HopPlotTask

__all__ = ["run"]

_DATASETS = ("ca-grqc", "ca-hepph", "email-enron")
_METHODS = ("UDS", "CRR", "BM2")


def run(quick: bool = True, seed: int = 0, p: float = 0.5) -> BenchReport:
    """Figure 10: hop-plot curves for the original and each reduction."""
    scales = quick_scales() if quick else {name: None for name in _DATASETS}
    sources = 64 if quick else 256
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=sources)
    task = HopPlotTask(num_sources=sources, seed=seed)

    headers = ["dataset", "hops", "initial"] + list(_METHODS)
    rows = []
    for dataset in _DATASETS:
        graph = cache.graph(dataset, scales.get(dataset))
        curves = {"initial": task.compute(graph, scale=1.0).value}
        for method in _METHODS:
            result = cache.reduce(dataset, scales.get(dataset), method, shedders[method], p)
            curves[method] = task.compute_for_result(result).value
        horizon = max(max(c) for c in curves.values() if c)
        for hops in range(1, horizon + 1):
            rows.append(
                [dataset, hops]
                + [
                    min(1.0, curves[series].get(hops, curves[series].get(max(curves[series], default=0), 0.0)))
                    if curves[series]
                    else 0.0
                    for series in ["initial", *_METHODS]
                ]
            )

    return BenchReport(
        experiment_id="fig10",
        title=f"Figure 10 — hop-plot (fraction of reachable pairs within k hops, p={p})",
        headers=headers,
        rows=rows,
        notes=["paper shape: all methods track the original curve on the whole"],
    )
