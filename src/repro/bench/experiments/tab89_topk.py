"""Tables VIII and IX — utility of top-10% PageRank queries.

Overlap of the top-10% PageRank node sets between the original and the
reduced graph, over the ``p`` grid.  Table VIII: ca-GrQc and ca-HepPh;
Table IX: email-Enron and com-LiveJournal (UDS skipped there, as in the
paper).  Paper shape: CRR > BM2 > UDS at every ``p``; UDS collapses below
0.2 at ``p = 0.1`` while CRR stays useful; on com-LiveJournal CRR/BM2 stay
above 0.75 even at ``p = 0.1``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.bench.harness import BenchReport, ReductionCache, default_shedders, quick_scales
from repro.tasks.topk import TopKQueryTask

__all__ = ["run_table8", "run_table9"]

_METHODS = ("UDS", "CRR", "BM2")


def _run(
    datasets: Tuple[str, ...],
    experiment_id: str,
    title: str,
    quick: bool,
    seed: int,
    skip_uds_on: Tuple[str, ...] = (),
) -> BenchReport:
    scales = quick_scales() if quick else {name: None for name in datasets}
    p_grid: Sequence[float] = (
        (0.9, 0.7, 0.5, 0.3, 0.1)
        if quick
        else tuple(round(0.9 - 0.1 * i, 1) for i in range(9))
    )
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=64 if quick else 256)
    task = TopKQueryTask(t_percent=10.0)

    headers = ["p"] + [f"{d}/{m}" for d in datasets for m in _METHODS]
    originals = {
        dataset: task.compute(cache.graph(dataset, scales.get(dataset)), scale=1.0)
        for dataset in datasets
    }
    rows = []
    for p in p_grid:
        row: list[object] = [p]
        for dataset in datasets:
            for method in _METHODS:
                if method == "UDS" and dataset in skip_uds_on:
                    row.append(None)
                    continue
                result = cache.reduce(dataset, scales.get(dataset), method, shedders[method], p)
                reduced_artifact = task.compute_for_result(result)
                row.append(task.utility(originals[dataset], reduced_artifact))
        rows.append(row)

    return BenchReport(
        experiment_id=experiment_id,
        title=title,
        headers=headers,
        rows=rows,
        notes=["paper shape: CRR >= BM2 > UDS; UDS collapses at small p"],
    )


def run_table8(quick: bool = True, seed: int = 0) -> BenchReport:
    """Table VIII: top-10% utility on ca-GrQc and ca-HepPh."""
    return _run(
        ("ca-grqc", "ca-hepph"),
        "tab8",
        "Table VIII — utility of top-10% queries I",
        quick,
        seed,
    )


def run_table9(quick: bool = True, seed: int = 0) -> BenchReport:
    """Table IX: top-10% utility on email-Enron and com-LiveJournal."""
    return _run(
        ("email-enron", "com-livejournal"),
        "tab9",
        "Table IX — utility of top-10% queries II",
        quick,
        seed,
        skip_uds_on=("com-livejournal",),
    )
