"""One module per paper table/figure, plus ablations.

Every experiment exposes ``run(quick=True, seed=0) -> BenchReport`` (the
tables with two halves expose ``run_table4``-style variants).  See
DESIGN.md §3 for the experiment index.
"""

from repro.bench.experiments import (
    ablations,
    extensions,
    fig4_steps,
    fig5_error_bounds,
    fig7_sp_distance,
    fig10_hopplot,
    fig56_degree_dist,
    fig89_curves,
    tab3_reduction_time,
    tab10_linkpred,
    tab45_total_time,
    tab67_analysis_time,
    tab89_topk,
)

__all__ = [
    "fig4_steps",
    "tab3_reduction_time",
    "tab45_total_time",
    "tab67_analysis_time",
    "fig5_error_bounds",
    "fig56_degree_dist",
    "fig7_sp_distance",
    "fig89_curves",
    "fig10_hopplot",
    "tab89_topk",
    "tab10_linkpred",
    "ablations",
    "extensions",
]

#: experiment id -> callable, for the CLI and EXPERIMENTS.md generation.
ALL_EXPERIMENTS = {
    "fig4": fig4_steps.run,
    "tab3": tab3_reduction_time.run,
    "tab4": tab45_total_time.run_table4,
    "tab5": tab45_total_time.run_table5,
    "tab6": tab67_analysis_time.run_table6,
    "tab7": tab67_analysis_time.run_table7,
    "fig5ab": fig5_error_bounds.run,
    "fig5cd": fig56_degree_dist.run,
    "fig6": fig56_degree_dist.run_zoom,
    "fig7": fig7_sp_distance.run,
    "fig8": fig89_curves.run_betweenness,
    "fig9": fig89_curves.run_clustering,
    "fig10": fig10_hopplot.run,
    "tab8": tab89_topk.run_table8,
    "tab9": tab89_topk.run_table9,
    "tab10": tab10_linkpred.run,
    "ablation-rewiring": ablations.run_rewiring_budget,
    "ablation-ranking": ablations.run_initial_ranking,
    "ablation-rounding": ablations.run_bm2_rounding,
    "ablation-edge-order": ablations.run_bm2_edge_order,
    "ablation-sampling": ablations.run_sampled_betweenness,
    "ext-connectivity": extensions.run_connectivity,
    "ext-assortativity": extensions.run_assortativity,
    "ext-progressive": extensions.run_progressive,
    "ext-core-baseline": extensions.run_core_baseline,
    "ext-estimation": extensions.run_estimation,
    "ext-sparsifiers": extensions.run_sparsifiers,
    "ext-community": extensions.run_community,
    "ext-memory": extensions.run_memory,
    "ext-scaling": extensions.run_scaling,
}
