"""Figures 5(c)-(d) and 6 — vertex degree distributions (email-Enron).

Figure 5(c)-(d): full degree distribution of the original graph vs the
three reductions (degrees above the cap aggregate into the cap bucket).
Figure 6: zoom on the most probable degrees (1-18).  Paper shape: CRR and
BM2 track the original curve closely; UDS deviates.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.harness import BenchReport, ReductionCache, default_shedders, quick_scales
from repro.tasks.degree import DegreeDistributionTask

__all__ = ["run", "run_zoom"]

_DATASET = "email-enron"
_METHODS = ("UDS", "CRR", "BM2")


def _distributions(quick: bool, seed: int, p: float, cap: int) -> Dict[str, Dict[int, float]]:
    scales = quick_scales() if quick else {_DATASET: None}
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=64 if quick else 256)
    task = DegreeDistributionTask(cap=cap)

    graph = cache.graph(_DATASET, scales.get(_DATASET))
    curves = {"initial": task.compute(graph, scale=1.0).value}
    for method in _METHODS:
        result = cache.reduce(_DATASET, scales.get(_DATASET), method, shedders[method], p)
        curves[method] = task.compute_for_result(result).value
    return curves


def _report(curves: Dict[str, Dict[int, float]], degrees: List[int], experiment_id: str, title: str) -> BenchReport:
    headers = ["degree", "initial"] + list(_METHODS)
    rows = []
    for degree in degrees:
        rows.append(
            [degree] + [curves[series].get(degree, 0.0) for series in ["initial", *_METHODS]]
        )
    return BenchReport(
        experiment_id=experiment_id,
        title=title,
        headers=headers,
        rows=rows,
        notes=["paper shape: CRR/BM2 curves track the initial curve; UDS deviates"],
    )


def run(quick: bool = True, seed: int = 0, p: float = 0.5, cap: int = 300) -> BenchReport:
    """Figure 5(c)-(d): the full (capped) degree distribution."""
    curves = _distributions(quick, seed, p, cap)
    degrees = sorted(set().union(*(set(c) for c in curves.values())))
    return _report(
        curves,
        degrees,
        "fig5cd",
        f"Figure 5(c)-(d) — vertex degree distribution, email-Enron (p={p}, cap={cap})",
    )


def run_zoom(quick: bool = True, seed: int = 0, p: float = 0.5) -> BenchReport:
    """Figure 6: zoom on degrees 1-18."""
    curves = _distributions(quick, seed, p, cap=300)
    return _report(
        curves,
        list(range(1, 19)),
        "fig6",
        f"Figure 6 — degree distribution zoom on degrees 1-18, email-Enron (p={p})",
    )
