"""Extension experiments beyond the paper's evaluation.

These probe properties the paper motivates but does not measure directly:

* ``run_connectivity`` — giant-component preservation per method/p
  (CRR's "key topological connectivity" claim, quantified).
* ``run_assortativity`` — degree assortativity of the reduced graphs vs
  the original (a second-order degree property; degree-preserving methods
  should approximate it).
* ``run_progressive`` — nested drill-down reductions: Δ of a progressive
  chain vs one-shot reductions at the same ratios (the price of nesting).
* ``run_core_baseline`` — the density-first CoreRank shedder vs CRR/BM2
  on Δ and top-k utility (what degree preservation buys over "keep the
  dense backbone").
"""

from __future__ import annotations

import math

from repro.bench.harness import BenchReport, ReductionCache, default_shedders, quick_scales
from repro.core.bm2 import BM2Shedder
from repro.core.core_shed import CoreShedder
from repro.core.crr import CRRShedder
from repro.core.progressive import progressive_reduce
from repro.graph.assortativity import degree_assortativity
from repro.tasks.connectivity import ConnectivityTask
from repro.tasks.topk import TopKQueryTask

__all__ = [
    "run_connectivity",
    "run_assortativity",
    "run_progressive",
    "run_core_baseline",
    "run_estimation",
    "run_sparsifiers",
    "run_community",
    "run_memory",
    "run_scaling",
]

_DATASET = "ca-grqc"
_METHODS = ("UDS", "CRR", "BM2")


def run_connectivity(quick: bool = True, seed: int = 0) -> BenchReport:
    """Extension: giant-component preservation utility per method and p."""
    scales = quick_scales() if quick else {_DATASET: None}
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=64 if quick else 256)
    task = ConnectivityTask()
    graph = cache.graph(_DATASET, scales.get(_DATASET))
    original = task.compute(graph)

    rows = []
    for p in (0.9, 0.5, 0.1):
        row: list[object] = [p]
        for method in _METHODS:
            result = cache.reduce(_DATASET, scales.get(_DATASET), method, shedders[method], p)
            reduced = task.compute_for_result(result)
            row.append(task.utility(original, reduced))
        rows.append(row)
    return BenchReport(
        experiment_id="ext-connectivity",
        title="Extension — giant-component preservation (ca-GrQc)",
        headers=["p"] + [f"utility/{m}" for m in _METHODS],
        rows=rows,
        notes=["probes CRR's 'key topological connectivity' design goal"],
    )


def run_assortativity(quick: bool = True, seed: int = 0) -> BenchReport:
    """Extension: degree assortativity of reduced graphs vs the original."""
    scales = quick_scales() if quick else {_DATASET: None}
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=64 if quick else 256)
    graph = cache.graph(_DATASET, scales.get(_DATASET))
    original_value = degree_assortativity(graph)

    rows = []
    for p in (0.9, 0.5, 0.1):
        row: list[object] = [p, original_value]
        for method in _METHODS:
            result = cache.reduce(_DATASET, scales.get(_DATASET), method, shedders[method], p)
            value = degree_assortativity(result.reduced)
            row.append(None if math.isnan(value) else value)
        rows.append(row)
    return BenchReport(
        experiment_id="ext-assortativity",
        title="Extension — degree assortativity of reduced graphs (ca-GrQc)",
        headers=["p", "initial"] + list(_METHODS),
        rows=rows,
        notes=["degree-preserving methods should approximate the initial value"],
    )


def run_progressive(quick: bool = True, seed: int = 0) -> BenchReport:
    """Extension: nested progressive reductions vs one-shot at equal ratios."""
    scales = quick_scales() if quick else {_DATASET: None}
    cache = ReductionCache(seed=seed)
    graph = cache.graph(_DATASET, scales.get(_DATASET))
    ratios = [0.8, 0.5, 0.2]

    chain = progressive_reduce(BM2Shedder(seed=seed), graph, ratios)
    rows = []
    for level, result in zip(ratios, chain):
        one_shot = BM2Shedder(seed=seed).reduce(graph, level)
        rows.append([level, result.average_delta, one_shot.average_delta])
    return BenchReport(
        experiment_id="ext-progressive",
        title="Extension — nested (progressive) vs one-shot BM2 reductions (ca-GrQc)",
        headers=["p", "progressive avg delta", "one-shot avg delta"],
        rows=rows,
        notes=["the nesting constraint costs some delta at deep levels"],
    )


def run_estimation(quick: bool = True, seed: int = 0) -> BenchReport:
    """Relative errors of the original-graph estimators per method and p."""
    from repro.analysis.estimation import estimation_report

    scales = quick_scales() if quick else {_DATASET: None}
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=64 if quick else 256)
    graph = cache.graph(_DATASET, scales.get(_DATASET))

    rows = []
    for p in (0.7, 0.4):
        for method in ("CRR", "BM2"):
            result = cache.reduce(_DATASET, scales.get(_DATASET), method, shedders[method], p)
            errors = estimation_report(graph, result.reduced, p).relative_errors()
            rows.append(
                [
                    p,
                    method,
                    errors["num_edges"],
                    errors["average_degree"],
                    errors["triangles"],
                    errors["global_clustering"],
                ]
            )
    return BenchReport(
        experiment_id="ext-estimation",
        title="Extension — relative error of original-graph estimators (ca-GrQc)",
        headers=["p", "method", "edges err", "avg degree err", "triangles err", "clustering err"],
        rows=rows,
        notes=[
            "size/degree estimates are tight (the methods target p*deg);"
            " triangle-based estimates carry method-dependent bias",
        ],
    )


def run_sparsifiers(quick: bool = True, seed: int = 0) -> BenchReport:
    """Δ and top-k utility of the sparsification-literature baselines."""
    from repro.core.local_shed import JaccardShedder, LocalDegreeShedder

    scales = quick_scales() if quick else {_DATASET: None}
    cache = ReductionCache(seed=seed)
    graph = cache.graph(_DATASET, scales.get(_DATASET))
    task = TopKQueryTask()
    original = task.compute(graph)

    shedders = {
        "LocalDegree": LocalDegreeShedder(seed=seed),
        "Jaccard": JaccardShedder(seed=seed),
        "BM2": BM2Shedder(seed=seed),
    }
    rows = []
    for p in (0.6, 0.3):
        for name, shedder in shedders.items():
            result = shedder.reduce(graph, p)
            utility = task.utility(original, task.compute_for_result(result))
            rows.append(
                [p, name, result.achieved_ratio, result.average_delta, utility]
            )
    return BenchReport(
        experiment_id="ext-sparsifiers",
        title="Extension — local sparsifiers vs BM2 (ca-GrQc)",
        headers=["p", "method", "achieved ratio", "avg delta", "top-10% utility"],
        rows=rows,
        notes=[
            "LocalDegree overshoots the budget by design; both sparsifiers"
            " pay a delta premium vs the degree-preserving BM2",
        ],
    )


def run_community(quick: bool = True, seed: int = 0) -> BenchReport:
    """Label-propagation community preservation (NMI) per method and p.

    Uses a stochastic-block-model workload instead of the collaboration
    surrogate: the preferential-attachment surrogates have no planted
    community structure, so NMI on them is pure noise.  The SBM gives the
    probe real signal — every method starts near NMI 1 at large ``p``.
    """
    from repro.graph.generators import stochastic_block_model
    from repro.tasks.community import CommunityTask

    block = 30 if quick else 120
    graph = stochastic_block_model(
        [block] * 4,
        [
            [0.30, 0.01, 0.01, 0.01],
            [0.01, 0.30, 0.01, 0.01],
            [0.01, 0.01, 0.30, 0.01],
            [0.01, 0.01, 0.01, 0.30],
        ],
        seed=seed,
    )
    shedders = default_shedders(seed=seed, crr_sources=64 if quick else 256)
    task = CommunityTask(seed=seed)
    original = task.compute(graph)

    rows = []
    for p in (0.8, 0.5, 0.2):
        row: list[object] = [p]
        for method in _METHODS:
            result = shedders[method].reduce(graph, p)
            reduced = task.compute_for_result(result)
            row.append(task.utility(original, reduced))
        rows.append(row)
    return BenchReport(
        experiment_id="ext-community",
        title="Extension — community preservation via label-propagation NMI (4-block SBM)",
        headers=["p"] + [f"NMI/{m}" for m in _METHODS],
        rows=rows,
        notes=["complements the paper's link-prediction task with an embedding-free probe"],
    )


def run_memory(quick: bool = True, seed: int = 0, p: float = 0.5) -> BenchReport:
    """Peak heap allocation of each reduction method, plus streaming.

    The resource-constraints claim measured directly: how much working
    memory each method needs beyond the input graph itself.
    """
    from repro.bench.memory import measure_peak_memory
    from repro.streaming.shedder import shed_stream

    scales = quick_scales() if quick else {_DATASET: None}
    cache = ReductionCache(seed=seed)
    graph = cache.graph(_DATASET, scales.get(_DATASET))
    edges = list(graph.edges())
    shedders = default_shedders(seed=seed, crr_sources=64 if quick else 256)

    rows = []
    for method in _METHODS:
        measurement = measure_peak_memory(lambda m=method: shedders[m].reduce(graph, p))
        rows.append([method, measurement.peak_mib, measurement.value.reduced.num_edges])
    streaming = measure_peak_memory(
        lambda: sum(1 for _ in shed_stream(lambda: iter(edges), p))
    )
    rows.append(["Streaming (BM2 phase 1)", streaming.peak_mib, streaming.value])

    return BenchReport(
        experiment_id="ext-memory",
        title=f"Extension — peak working memory of reduction (ca-GrQc, p={p})",
        headers=["method", "peak MiB", "|E'|"],
        rows=rows,
        notes=[
            "tracemalloc peak over the reduction call; the input graph is"
            " excluded (allocated before tracing starts)",
            "expected: streaming << BM2 < CRR < UDS",
        ],
    )


def run_scaling(quick: bool = True, seed: int = 0, p: float = 0.5) -> BenchReport:
    """Reduction time vs graph size (the paper's Table III scaling claim).

    "When the size of the datasets grows exponentially, the graph
    reduction time of BM2 is almost unchanged, and CRR can achieve nearly
    linear growth."  We double the node count repeatedly and time both
    methods; the growth column reports each step's time ratio (2.0 would
    be exactly linear in size, 4.0 quadratic).
    """
    from repro.core.bm2 import BM2Shedder
    from repro.core.crr import CRRShedder
    from repro.graph.generators import powerlaw_cluster

    sizes = (200, 400, 800) if quick else (500, 1000, 2000, 4000)
    sources = 64 if quick else 256

    rows = []
    previous = {"CRR": None, "BM2": None}
    for n in sizes:
        graph = powerlaw_cluster(n, 3, 0.4, seed=seed)
        crr = CRRShedder(seed=seed, num_betweenness_sources=sources).reduce(graph, p)
        bm2 = BM2Shedder(seed=seed).reduce(graph, p)
        row: list[object] = [n, graph.num_edges]
        for method, result in (("CRR", crr), ("BM2", bm2)):
            growth = (
                result.elapsed_seconds / previous[method]
                if previous[method]
                else None
            )
            row += [result.elapsed_seconds, growth]
            previous[method] = result.elapsed_seconds
        rows.append(row)

    return BenchReport(
        experiment_id="ext-scaling",
        title=f"Extension — reduction time vs graph size (powerlaw, p={p})",
        headers=["nodes", "edges", "CRR time (s)", "CRR growth", "BM2 time (s)", "BM2 growth"],
        rows=rows,
        notes=[
            "growth = time ratio per size doubling; 2 = linear, 4 = quadratic",
            "paper shape: BM2 near-flat per edge, CRR near-linear"
            " (with sampled betweenness)",
        ],
    )


def run_core_baseline(quick: bool = True, seed: int = 0) -> BenchReport:
    """Extension: density-first CoreRank vs the degree-preserving methods."""
    scales = quick_scales() if quick else {_DATASET: None}
    cache = ReductionCache(seed=seed)
    graph = cache.graph(_DATASET, scales.get(_DATASET))
    task = TopKQueryTask()
    original = task.compute(graph)

    shedders = {
        "CoreRank": CoreShedder(seed=seed),
        "CRR": CRRShedder(seed=seed, num_betweenness_sources=64 if quick else 256),
        "BM2": BM2Shedder(seed=seed),
    }
    rows = []
    for p in (0.7, 0.4, 0.1):
        for name, shedder in shedders.items():
            result = shedder.reduce(graph, p)
            utility = task.utility(original, task.compute_for_result(result))
            rows.append([p, name, result.average_delta, utility])
    return BenchReport(
        experiment_id="ext-core-baseline",
        title="Extension — density-first CoreRank vs degree-preserving methods (ca-GrQc)",
        headers=["p", "method", "avg delta", "top-10% utility"],
        rows=rows,
        notes=["expected: CoreRank's delta is far worse; utility competitive only at large p"],
    )
