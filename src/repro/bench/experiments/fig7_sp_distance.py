"""Figure 7 — shortest-path distance distributions.

For each of the three small/medium datasets, the distance distribution of
the original graph and of each method's reduction at a small ``p``.
Paper shape: CRR/BM2 conform to the original curve's trend; UDS deviates
significantly when ``p`` is small.
"""

from __future__ import annotations

from repro.bench.harness import BenchReport, ReductionCache, default_shedders, quick_scales
from repro.tasks.sp_distance import ShortestPathDistanceTask

__all__ = ["run"]

_DATASETS = ("ca-grqc", "ca-hepph", "email-enron")
_METHODS = ("UDS", "CRR", "BM2")


def run(quick: bool = True, seed: int = 0, p: float = 0.3) -> BenchReport:
    """Figure 7: shortest-path distance distributions at small p."""
    scales = quick_scales() if quick else {name: None for name in _DATASETS}
    sources = 64 if quick else 256
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=sources)
    task = ShortestPathDistanceTask(num_sources=sources, seed=seed)

    headers = ["dataset", "distance", "initial"] + list(_METHODS)
    rows = []
    for dataset in _DATASETS:
        graph = cache.graph(dataset, scales.get(dataset))
        curves = {"initial": task.compute(graph, scale=1.0).value}
        for method in _METHODS:
            result = cache.reduce(dataset, scales.get(dataset), method, shedders[method], p)
            curves[method] = task.compute_for_result(result).value
        distances = sorted(set().union(*(set(c) for c in curves.values())))
        for distance in distances:
            rows.append(
                [dataset, distance]
                + [curves[series].get(distance, 0.0) for series in ["initial", *_METHODS]]
            )

    return BenchReport(
        experiment_id="fig7",
        title=f"Figure 7 — shortest-path distance distribution (p={p})",
        headers=headers,
        rows=rows,
        notes=["paper shape: CRR/BM2 follow the initial trend; UDS deviates at small p"],
    )
