"""Tables VI and VII — graph analysis time on reduced graphs (email-Enron).

Unlike Tables IV-V this measures *only* the task time on the reduced
graph, against the "T" row (task on the original).  Paper shape: analysis
on reduced graphs is cheaper than on the original in most cells, shrinking
with ``p``.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import (
    BenchReport,
    ReductionCache,
    default_shedders,
    quick_scales,
)
from repro.bench.experiments.tab45_total_time import _tasks_for

__all__ = ["run_table6", "run_table7"]

_DATASET = "email-enron"
_METHODS = ("UDS", "CRR", "BM2")


def _run(table: int, quick: bool, seed: int) -> BenchReport:
    scales = quick_scales() if quick else {_DATASET: None}
    p_grid: Sequence[float] = (0.9, 0.5, 0.1)
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=64 if quick else 256)
    tasks = _tasks_for(4 if table == 6 else 5, quick, seed)

    graph = cache.graph(_DATASET, scales.get(_DATASET))
    headers = ["p"] + [f"{task}/{method}" for task in tasks for method in _METHODS]

    t_row: list[object] = ["T"]
    for task_name, task in tasks.items():
        t_row += [task.compute(graph, scale=1.0).elapsed_seconds, None, None]

    rows = [t_row]
    for p in p_grid:
        row: list[object] = [p]
        for task_name, task in tasks.items():
            for method in _METHODS:
                result = cache.reduce(_DATASET, scales.get(_DATASET), method, shedders[method], p)
                artifact = task.compute_for_result(result)
                row.append(artifact.elapsed_seconds)
        rows.append(row)

    return BenchReport(
        experiment_id=f"tab{table}",
        title=(
            f"Table {'VI' if table == 6 else 'VII'} — graph analysis time on"
            f" reduced graphs, email-Enron (sec); T = original graph"
        ),
        headers=headers,
        rows=rows,
        notes=["paper shape: analysis time drops with p in most cells"],
    )


def run_table6(quick: bool = True, seed: int = 0) -> BenchReport:
    """Table VI: link prediction, SP distance, betweenness, hop-plot."""
    return _run(6, quick, seed)


def run_table7(quick: bool = True, seed: int = 0) -> BenchReport:
    """Table VII: top-k, vertex degree, clustering coefficient."""
    return _run(7, quick, seed)
