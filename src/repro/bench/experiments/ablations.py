"""Ablation experiments for the design choices DESIGN.md calls out.

Not part of the paper's evaluation, but each isolates one ingredient of
CRR or BM2:

* ``run_rewiring_budget`` — CRR Δ as a function of the steps factor
  (complements Figure 4 with the x = 0 "no rewiring" point).
* ``run_initial_ranking`` — betweenness-ranked vs random initial edge set
  in CRR Phase 1: what the ranking costs in Δ and buys in connectivity.
* ``run_bm2_rounding`` — BM2 capacity rounding rule (half-up / half-even /
  floor / ceil).
* ``run_bm2_edge_order`` — BM2 Phase 1 edge scan order (input vs random).
* ``run_sampled_betweenness`` — CRR quality as the Phase 1 betweenness
  estimator gets cheaper (exact vs k sampled sources).
"""

from __future__ import annotations

from repro.bench.harness import BenchReport, ReductionCache, quick_scales
from repro.core.bm2 import BM2Shedder
from repro.core.crr import CRRShedder
from repro.graph.traversal import largest_component

__all__ = [
    "run_rewiring_budget",
    "run_initial_ranking",
    "run_bm2_rounding",
    "run_bm2_edge_order",
    "run_sampled_betweenness",
]

_DATASET = "ca-grqc"


def _graph(quick: bool, seed: int):
    scales = quick_scales() if quick else {_DATASET: None}
    return ReductionCache(seed=seed).graph(_DATASET, scales.get(_DATASET))


def run_rewiring_budget(quick: bool = True, seed: int = 0, p: float = 0.5) -> BenchReport:
    """Ablation: CRR delta as a function of the rewiring steps factor."""
    graph = _graph(quick, seed)
    rows = []
    for factor in (0.0, 1.0, 4.0, 10.0):
        shedder = CRRShedder(steps_factor=factor, num_betweenness_sources=64, seed=seed)
        result = shedder.reduce(graph, p)
        rows.append(
            [factor, result.average_delta, result.stats["accepted_swaps"], result.elapsed_seconds]
        )
    return BenchReport(
        experiment_id="ablation-rewiring",
        title=f"Ablation — CRR rewiring budget (ca-GrQc, p={p})",
        headers=["steps factor x", "avg delta", "accepted swaps", "time (s)"],
        rows=rows,
        notes=["expected: avg delta non-increasing in x"],
    )


def run_initial_ranking(quick: bool = True, seed: int = 0, p: float = 0.5) -> BenchReport:
    """Ablation: betweenness-ranked vs random phase-1 edge selection."""
    graph = _graph(quick, seed)
    rows = []
    for label, skip in (("betweenness", False), ("random", True)):
        # steps = 0 isolates the phase-1 selection strategy.
        shedder = CRRShedder(steps_factor=0.0, skip_ranking=skip, seed=seed)
        result = shedder.reduce(graph, p)
        rows.append(
            [
                label,
                result.average_delta,
                len(largest_component(result.reduced)),
                result.elapsed_seconds,
            ]
        )
    return BenchReport(
        experiment_id="ablation-ranking",
        title=f"Ablation — CRR initial edge ranking, phase 1 only (ca-GrQc, p={p})",
        headers=["initial ranking", "avg delta", "giant component size", "time (s)"],
        rows=rows,
        notes=[
            "expected: betweenness ranking keeps a larger giant component"
            " (it preserves bridges) at the cost of a worse initial delta",
        ],
    )


def run_bm2_rounding(quick: bool = True, seed: int = 0, p: float = 0.5) -> BenchReport:
    """Ablation: BM2 capacity rounding rule (half-up/half-even/floor/ceil)."""
    graph = _graph(quick, seed)
    rows = []
    for rounding in ("half_up", "half_even", "floor", "ceil"):
        result = BM2Shedder(rounding=rounding, seed=seed).reduce(graph, p)
        rows.append(
            [rounding, result.average_delta, result.achieved_ratio, result.elapsed_seconds]
        )
    return BenchReport(
        experiment_id="ablation-rounding",
        title=f"Ablation — BM2 capacity rounding (ca-GrQc, p={p})",
        headers=["rounding", "avg delta", "achieved ratio", "time (s)"],
        rows=rows,
        notes=["expected: floor undershoots and ceil overshoots the edge budget"],
    )


def run_bm2_edge_order(quick: bool = True, seed: int = 0, p: float = 0.5) -> BenchReport:
    """Ablation: BM2 phase-1 edge scan order (input vs random)."""
    graph = _graph(quick, seed)
    rows = []
    for label, shuffle in (("input order", False), ("random order", True)):
        result = BM2Shedder(shuffle_edges=shuffle, seed=seed).reduce(graph, p)
        rows.append([label, result.average_delta, result.stats["matched_edges"]])
    return BenchReport(
        experiment_id="ablation-edge-order",
        title=f"Ablation — BM2 phase-1 edge scan order (ca-GrQc, p={p})",
        headers=["scan order", "avg delta", "matched edges"],
        rows=rows,
        notes=["expected: scan order changes the matching only marginally"],
    )


def run_sampled_betweenness(quick: bool = True, seed: int = 0, p: float = 0.5) -> BenchReport:
    """Ablation: CRR quality/time with sampled betweenness sources."""
    graph = _graph(quick, seed)
    rows = []
    variants = [("exact", None), ("k=256", 256), ("k=64", 64), ("k=16", 16)]
    for label, sources in variants:
        shedder = CRRShedder(num_betweenness_sources=sources, seed=seed)
        result = shedder.reduce(graph, p)
        rows.append([label, result.average_delta, result.elapsed_seconds])
    return BenchReport(
        experiment_id="ablation-sampling",
        title=f"Ablation — CRR with sampled betweenness (ca-GrQc, p={p})",
        headers=["estimator", "avg delta", "time (s)"],
        rows=rows,
        notes=[
            "expected: time drops with fewer sources; delta is insensitive"
            " because the rewiring phase repairs ranking noise",
        ],
    )
