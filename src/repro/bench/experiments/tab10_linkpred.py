"""Table X — utility of link prediction within community.

node2vec (p=q=1) + k-means (5 clusters) link prediction on 2-hop pairs;
utility is the overlap of the reduced graph's predictions with the
original's.  Paper shape: on ca-GrQc all methods are comparable; on
ca-HepPh and email-Enron UDS's utility drops much faster than CRR/BM2's.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import BenchReport, ReductionCache, default_shedders, quick_scales
from repro.tasks.link_prediction import LinkPredictionTask

__all__ = ["run"]

_DATASETS = ("ca-grqc", "ca-hepph", "email-enron")
_METHODS = ("UDS", "CRR", "BM2")


def run(quick: bool = True, seed: int = 0) -> BenchReport:
    """Table X: link prediction utility per dataset, method and p."""
    scales = quick_scales() if quick else {name: None for name in _DATASETS}
    p_grid: Sequence[float] = (
        (0.9, 0.5, 0.1)
        if quick
        else tuple(round(0.9 - 0.1 * i, 1) for i in range(9))
    )
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=64 if quick else 256)
    # "original" pair universe: communities from the reduction, prediction
    # pairs from the original graph — the interpretation that matches the
    # paper's reported small-p utilities (see LinkPredictionTask docs).
    task = LinkPredictionTask(seed=seed, pair_universe="original")

    headers = ["p"] + [f"{d}/{m}" for d in _DATASETS for m in _METHODS]
    originals = {
        dataset: task.compute(cache.graph(dataset, scales.get(dataset)), scale=1.0)
        for dataset in _DATASETS
    }
    rows = []
    for p in p_grid:
        row: list[object] = [p]
        for dataset in _DATASETS:
            for method in _METHODS:
                result = cache.reduce(dataset, scales.get(dataset), method, shedders[method], p)
                reduced_artifact = task.compute_for_result(result)
                row.append(task.utility(originals[dataset], reduced_artifact))
        rows.append(row)

    return BenchReport(
        experiment_id="tab10",
        title="Table X — utility of link prediction within community",
        headers=headers,
        rows=rows,
        notes=["paper shape: UDS degrades faster than CRR/BM2 on the denser datasets"],
    )
