"""Tables IV and V — total processing time on ca-GrQc (seconds).

Total time = reduction time + task time on the reduced graph, compared to
the "T" row (running the task directly on the original graph).  Table IV
covers the expensive tasks (link prediction, SP distance, betweenness,
hop-plot); Table V the cheap ones (top-k, vertex degree, clustering
coefficient).  Paper shape: at small ``p`` CRR and BM2 beat both UDS and
the direct computation; for the cheap tasks the reduction cost dominates,
so the advantage over direct computation shrinks.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.bench.harness import (
    BenchReport,
    ReductionCache,
    default_shedders,
    quick_scales,
)
from repro.tasks.base import GraphTask
from repro.tasks.betweenness import BetweennessCentralityTask
from repro.tasks.clustering import ClusteringCoefficientTask
from repro.tasks.degree import DegreeDistributionTask
from repro.tasks.hopplot import HopPlotTask
from repro.tasks.link_prediction import LinkPredictionTask
from repro.tasks.sp_distance import ShortestPathDistanceTask
from repro.tasks.topk import TopKQueryTask

__all__ = ["run_table4", "run_table5"]

_DATASET = "ca-grqc"
_METHODS = ("UDS", "CRR", "BM2")


def _tasks_for(table: int, quick: bool, seed: int) -> Dict[str, GraphTask]:
    sources = 64 if quick else 256
    if table == 4:
        return {
            "Link prediction": LinkPredictionTask(seed=seed),
            "SP distance": ShortestPathDistanceTask(num_sources=sources, seed=seed),
            "Betweenness centrality": BetweennessCentralityTask(
                num_sources=sources, seed=seed
            ),
            "Hop-plot": HopPlotTask(num_sources=sources, seed=seed),
        }
    return {
        "Top-k": TopKQueryTask(),
        "Vertex degree": DegreeDistributionTask(),
        "Clustering coefficient": ClusteringCoefficientTask(),
    }


def _run(table: int, quick: bool, seed: int) -> BenchReport:
    scales = quick_scales() if quick else {_DATASET: None}
    p_grid: Sequence[float] = (0.9, 0.5, 0.1)
    cache = ReductionCache(seed=seed)
    shedders = default_shedders(seed=seed, crr_sources=64 if quick else 256)
    tasks = _tasks_for(table, quick, seed)

    graph = cache.graph(_DATASET, scales.get(_DATASET))
    headers = ["p"] + [
        f"{task}/{method}" for task in tasks for method in _METHODS
    ]

    # "T" row: the task run directly on the original graph.
    t_row: list[object] = ["T"]
    direct_times = {
        name: task.compute(graph, scale=1.0).elapsed_seconds
        for name, task in tasks.items()
    }
    for task_name in tasks:
        t_row += [direct_times[task_name], None, None]

    rows = [t_row]
    for p in p_grid:
        row: list[object] = [p]
        for task_name, task in tasks.items():
            for method in _METHODS:
                result = cache.reduce(_DATASET, scales.get(_DATASET), method, shedders[method], p)
                artifact = task.compute_for_result(result)
                row.append(result.elapsed_seconds + artifact.elapsed_seconds)
        rows.append(row)

    return BenchReport(
        experiment_id=f"tab{table}",
        title=(
            f"Table {'IV' if table == 4 else 'V'} — total processing time on"
            f" ca-GrQc (sec); T = direct computation on the original graph"
        ),
        headers=headers,
        rows=rows,
        notes=[
            "total = reduction time + task time on the reduced graph",
            "paper shape: at p=0.1 CRR and BM2 are far cheaper than UDS",
        ],
    )


def run_table4(quick: bool = True, seed: int = 0) -> BenchReport:
    """Table IV: link prediction, SP distance, betweenness, hop-plot."""
    return _run(4, quick, seed)


def run_table5(quick: bool = True, seed: int = 0) -> BenchReport:
    """Table V: top-k, vertex degree, clustering coefficient."""
    return _run(5, quick, seed)
