"""Plain-text table rendering for benchmark reports.

The benches print the same row/column layout the paper's tables use, so a
reader can put EXPERIMENTS.md next to the PDF and compare shapes cell by
cell.  Everything is simple monospace alignment — no external deps.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_cell", "render_table"]


def format_cell(value: object, precision: int = 3) -> str:
    """Human-friendly cell formatting: floats rounded, None blank."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.1f}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned monospace table with a rule under the header."""
    text_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    columns = len(headers)
    for row in text_rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells but the table has {columns} columns"
            )
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in text_rows)
    return "\n".join(parts)
