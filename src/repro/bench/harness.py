"""Experiment plumbing shared by every table/figure reproduction.

Each experiment module in :mod:`repro.bench.experiments` exposes
``run(quick=True, seed=0) -> BenchReport``.  ``quick`` selects the fast
profile (smaller surrogates, coarser parameter grids) used by the pytest
benches; ``quick=False`` runs the full profile behind EXPERIMENTS.md.

:class:`ReductionCache` deduplicates reductions within a process: several
experiments reuse the same (dataset, method, p) reduction, and UDS runs
are expensive enough that recomputing them per table would dominate.  It
is a thin adapter over the service-layer
:class:`~repro.service.store.ArtifactStore` — the repo has exactly one
cache implementation, and benches can opt into its disk persistence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.baselines.uds import UDSSummarizer
from repro.core.base import EdgeShedder, ReductionResult
from repro.core.bm2 import BM2Shedder
from repro.core.crr import CRRShedder
from repro.datasets.registry import load_dataset
from repro.errors import BenchError
from repro.graph.graph import Graph
from repro.bench.tables import render_table
from repro.service.store import ArtifactStore

__all__ = [
    "BenchReport",
    "ReductionCache",
    "default_shedders",
    "quick_scales",
    "full_scales",
]

#: Dataset scales for the two profiles.  Quick keeps every graph in the
#: few-hundred-node range so the whole bench suite finishes in minutes;
#: full uses the registry defaults (thousands of nodes).
_QUICK_SCALES: Dict[str, float] = {
    "ca-grqc": 0.06,
    "ca-hepph": 0.02,
    "email-enron": 0.008,
    "com-livejournal": 0.0004,
}


def quick_scales() -> Dict[str, float]:
    """Dataset scale factors for the fast benchmark profile."""
    return dict(_QUICK_SCALES)


def full_scales() -> Dict[str, float]:
    """Dataset scale factors for the full profile (registry defaults)."""
    return {name: None for name in _QUICK_SCALES}


@dataclass
class BenchReport:
    """One reproduced table/figure: layout plus the raw records."""

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    notes: List[str] = field(default_factory=list)

    def render(self, precision: int = 3) -> str:
        text = render_table(self.headers, self.rows, title=self.title, precision=precision)
        if self.notes:
            text += "\n" + "\n".join(f"note: {note}" for note in self.notes)
        return text

    def column(self, header: str) -> List[object]:
        """Extract one column by header name (for shape assertions)."""
        try:
            index = self.headers.index(header)
        except ValueError:
            raise BenchError(f"no column {header!r} in {self.experiment_id}") from None
        return [row[index] for row in self.rows]


def default_shedders(seed: int = 0, crr_sources: Optional[int] = None) -> Dict[str, EdgeShedder]:
    """The paper's three methods, seeded: UDS, CRR, BM2.

    ``crr_sources`` switches CRR (and UDS's utility computation) to sampled
    betweenness — used for the larger surrogates.
    """
    return {
        "UDS": UDSSummarizer(seed=seed, num_betweenness_sources=crr_sources),
        "CRR": CRRShedder(seed=seed, num_betweenness_sources=crr_sources),
        "BM2": BM2Shedder(seed=seed),
    }


class ReductionCache:
    """Memoises dataset builds and reduction runs within a process.

    Reductions are keyed content-addressed in a shared
    :class:`~repro.service.store.ArtifactStore` (pass ``store`` to share
    one with a service, or ``persist_dir`` for warm restarts); graph
    builds stay memoised here by (dataset, scale) since the store keys
    off graph content, not provenance.
    """

    def __init__(
        self,
        seed: int = 0,
        store: Optional[ArtifactStore] = None,
        persist_dir: Optional[str] = None,
    ) -> None:
        self.seed = seed
        self.store = store if store is not None else ArtifactStore(persist_dir=persist_dir)
        self._graphs: Dict[Tuple[str, Optional[float]], Graph] = {}

    def graph(self, dataset: str, scale: Optional[float]) -> Graph:
        key = (dataset, scale)
        if key not in self._graphs:
            self._graphs[key] = load_dataset(dataset, scale=scale, seed=self.seed)
        return self._graphs[key]

    def reduce(
        self,
        dataset: str,
        scale: Optional[float],
        method: str,
        shedder: EdgeShedder,
        p: float,
    ) -> ReductionResult:
        graph = self.graph(dataset, scale)
        sources = getattr(shedder, "num_betweenness_sources", None)
        result, _ = self.store.get_or_compute(
            graph,
            method=method,
            p=p,
            seed=self.seed,
            compute=lambda: shedder.reduce(graph, p),
            engine=getattr(shedder, "engine", "array"),
            variant=f"sources={sources}" if sources is not None else "",
        )
        return result
