"""Seeded churn workload generators for the dynamic-maintenance layer.

A workload is a list of ``("insert" | "delete", u, v)`` operations that is
*valid against a given start graph*: every insert names a currently-absent
edge, every delete a currently-present one.  The generators keep a shadow
edge set (an :class:`~repro.core.crr.IndexedEdgePool` of canonical edge
keys) while emitting ops, so a generated stream always replays cleanly
through :class:`~repro.dynamic.IncrementalShedder` — or through an offline
rebuild baseline — without touching the start graph itself.

Three canonical shapes, mirroring the dynamic-graph literature:

* :func:`insert_only_growth` — the graph only grows; a configurable
  fraction of inserts attach brand-new nodes (labelled ``("dyn", k)``),
  the rest densify the existing node set.
* :func:`sliding_window` — every insert is paired with the deletion of
  the oldest live edge (FIFO), modelling a fixed-width stream window.
* :func:`mixed_churn` — a Bernoulli mix of inserts and deletes, the
  general case the acceptance benchmark replays.

All generators are deterministic for an integer seed.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Tuple

from repro.core.crr import IndexedEdgePool
from repro.errors import ReductionError
from repro.graph.graph import Edge, Graph, Node
from repro.rng import RandomState, ensure_rng

__all__ = [
    "WORKLOADS",
    "generate_workload",
    "insert_only_growth",
    "mixed_churn",
    "sliding_window",
]

ChurnOp = Tuple[str, Node, Node]


def _canonical(u: Node, v: Node) -> Edge:
    """One key per undirected edge; labels may be ints or ``("dyn", k)``."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


class _ShadowGraph:
    """Edge/node shadow state the generators mutate while emitting ops."""

    def __init__(self, graph: Graph) -> None:
        self.nodes: List[Node] = list(graph.nodes())
        self.pool = IndexedEdgePool(_canonical(u, v) for u, v in graph.edges())
        self.fresh = 0  # next ("dyn", k) label

    def has_edge(self, u: Node, v: Node) -> bool:
        return _canonical(u, v) in self.pool

    def insert(self, u: Node, v: Node) -> ChurnOp:
        self.pool.add(_canonical(u, v))
        return ("insert", u, v)

    def delete(self, u: Node, v: Node) -> ChurnOp:
        self.pool.remove(_canonical(u, v))
        return ("delete", u, v)

    def new_node(self) -> Node:
        node = ("dyn", self.fresh)
        self.fresh += 1
        self.nodes.append(node)
        return node

    def random_node(self, rng) -> Node:
        return self.nodes[int(rng.integers(len(self.nodes)))]

    def fresh_attachment(self, rng) -> Tuple[Node, Node]:
        """A brand-new node paired with an existing one (partner drawn first,
        so the fresh node can never be its own neighbour)."""
        partner = self.random_node(rng)
        return self.new_node(), partner

    def random_absent_pair(self, rng, tries: int = 64) -> Tuple[Node, Node]:
        """A uniform-ish currently-absent pair; falls back to a fresh node."""
        for _ in range(tries):
            u = self.random_node(rng)
            v = self.random_node(rng)
            if u != v and not self.has_edge(u, v):
                return u, v
        # Near-clique fallback: attach a brand-new node instead of spinning.
        return self.fresh_attachment(rng)


def insert_only_growth(
    graph: Graph,
    num_ops: int,
    seed: RandomState = None,
    new_node_ratio: float = 0.2,
) -> List[ChurnOp]:
    """``num_ops`` inserts; a ``new_node_ratio`` fraction attach fresh nodes."""
    if not 0.0 <= new_node_ratio <= 1.0:
        raise ReductionError(
            f"new_node_ratio must be in [0, 1], got {new_node_ratio}"
        )
    rng = ensure_rng(seed)
    shadow = _ShadowGraph(graph)
    if not shadow.nodes:
        raise ReductionError("cannot generate churn against an empty graph")
    ops: List[ChurnOp] = []
    for _ in range(num_ops):
        if rng.random() < new_node_ratio:
            u, v = shadow.fresh_attachment(rng)
        else:
            u, v = shadow.random_absent_pair(rng)
        ops.append(shadow.insert(u, v))
    return ops


def sliding_window(
    graph: Graph,
    num_ops: int,
    seed: RandomState = None,
) -> List[ChurnOp]:
    """Alternate inserting a fresh edge and expiring the oldest live edge.

    The window (FIFO over the start graph's edges, then over inserts)
    keeps ``|E|`` constant after each insert/delete pair — the classic
    bounded-stream regime.  Odd ``num_ops`` ends on an unpaired insert.
    """
    rng = ensure_rng(seed)
    shadow = _ShadowGraph(graph)
    if not shadow.nodes:
        raise ReductionError("cannot generate churn against an empty graph")
    window: Deque[Edge] = deque(_canonical(u, v) for u, v in graph.edges())
    ops: List[ChurnOp] = []
    while len(ops) < num_ops:
        u, v = shadow.random_absent_pair(rng)
        ops.append(shadow.insert(u, v))
        window.append(_canonical(u, v))
        if len(ops) < num_ops and window:
            old_u, old_v = window.popleft()
            ops.append(shadow.delete(old_u, old_v))
    return ops


def mixed_churn(
    graph: Graph,
    num_ops: int,
    seed: RandomState = None,
    insert_prob: float = 0.6,
    new_node_ratio: float = 0.1,
) -> List[ChurnOp]:
    """Bernoulli mix: insert with ``insert_prob``, else delete a random edge.

    Deletes draw uniformly from the live edge set; when no edges remain the
    op falls back to an insert.  ``new_node_ratio`` of inserts attach a
    fresh node, so the node universe grows slowly under churn.
    """
    if not 0.0 <= insert_prob <= 1.0:
        raise ReductionError(f"insert_prob must be in [0, 1], got {insert_prob}")
    if not 0.0 <= new_node_ratio <= 1.0:
        raise ReductionError(
            f"new_node_ratio must be in [0, 1], got {new_node_ratio}"
        )
    rng = ensure_rng(seed)
    shadow = _ShadowGraph(graph)
    if not shadow.nodes:
        raise ReductionError("cannot generate churn against an empty graph")
    ops: List[ChurnOp] = []
    for _ in range(num_ops):
        if rng.random() < insert_prob or len(shadow.pool) == 0:
            if rng.random() < new_node_ratio:
                u, v = shadow.fresh_attachment(rng)
            else:
                u, v = shadow.random_absent_pair(rng)
            ops.append(shadow.insert(u, v))
        else:
            u, v = shadow.pool.sample(rng)
            ops.append(shadow.delete(u, v))
    return ops


#: Registry keyed by the CLI's ``--churn`` choices.
WORKLOADS: Dict[str, Callable[..., List[ChurnOp]]] = {
    "insert": insert_only_growth,
    "sliding": sliding_window,
    "mixed": mixed_churn,
}


def generate_workload(
    name: str,
    graph: Graph,
    num_ops: int,
    seed: RandomState = None,
    **kwargs,
) -> List[ChurnOp]:
    """Dispatch to a registered generator by name (see :data:`WORKLOADS`)."""
    if name not in WORKLOADS:
        raise ReductionError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        )
    return WORKLOADS[name](graph, num_ops, seed, **kwargs)
