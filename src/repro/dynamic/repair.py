"""Localized Δ-repair around the nodes an operation touched.

After each insert/delete the maintainer calls :meth:`LocalRepairer.repair`
with the (two) touched node ids.  Repair is deliberately *local* — it looks
only at the touched nodes' incident edges plus a bounded random probe of
the held-back reservoir — so its cost is O(deg) per op, never O(|E|).
Three moves, applied in invariant-first order:

1. **Demote** (``dis(w) > demote_threshold``): a deletion in ``G`` shrinks
   ``p·deg(w)`` under a fixed kept degree, which can push ``dis(w)`` above
   the per-node guarantee a BM2 seed provides (``dis < 1``, Lemmas 1-2).
   Evicting the incident kept edge with the best (most negative) ``d_1``
   restores it; evicted edges enter the reservoir for later promotion.
2. **Promote** (spare Phase-1 capacity at a touched node): admit held-back
   incident edges — and a bounded probe of reservoir candidates — while
   *both* endpoints sit strictly below their live capacities
   ``b(u) = [p·deg_G(u)]``.  Below-capacity means ``dis ≤ −1/2`` at both
   ends, so a capacity-based promotion never increases ``Δ`` and keeps
   BM2's Phase-1 admission invariant intact.
3. **Swap** (``1/2 < dis(w) ≤ demote_threshold``): a bounded batch of
   (kept incident edge out, reservoir candidate in) pairs is priced with
   the shared vectorized :meth:`~repro.dynamic.DynamicDegreeTracker
   .swap_change_ids` (exactly CRR's rewiring arithmetic); the best strictly
   Δ-improving, capacity-feasible pair is applied.

All candidate orderings are over integer node ids (sorted) or the seeded
reservoir sample — never raw set iteration order — so a seeded run replays
identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graph.graph import Graph
from repro.streaming.shedder import EdgeReservoir
from repro.dynamic.tracker import DynamicDegreeTracker

__all__ = ["LocalRepairer", "RepairConfig"]

#: Float-noise guard mirroring the offline engines' thresholds.
_EPSILON = 1e-9


@dataclass(frozen=True)
class RepairConfig:
    """Knobs for :class:`LocalRepairer` (defaults match the benchmarks).

    Attributes:
        demote_threshold: per-node ``dis`` ceiling restored by demotion;
            1.0 is the BM2 per-node guarantee (Phase 2 leaves every node
            with ``dis < 1``), so a BM2-seeded maintainer preserves that
            guarantee at every step.
        promote_local: admit held-back incident edges of touched nodes
            when both endpoints have spare capacity.
        reservoir_probes: reservoir candidates probed for promotion per
            repair call (bounded; stale entries found probing are dropped).
            Local promotion does most of the Δ work under churn, so the
            default probe budget is small.
        probe_interval: reservoir probing runs on every ``probe_interval``-th
            repair call (1 = every call).  Probing is a background drain of
            leftover promotable edges — anything an op *newly* enables is
            incident to a hinted node and caught by local promotion — so it
            amortizes cleanly.
        max_swaps_per_op: Δ-improving swaps applied per repair call.
        swap_interval: surplus-node swap pricing runs on every
            ``swap_interval``-th repair call (1 = every call).  Pricing is
            the most expensive repair move and improving pairs are rare, so
            it amortizes like probing does.
        swap_out_candidates: kept incident edges priced per surplus node.
        swap_in_candidates: reservoir candidates priced per surplus node.
        min_improvement: a swap must beat this Δ gain (float-noise guard).
    """

    demote_threshold: float = 1.0
    promote_local: bool = True
    reservoir_probes: int = 2
    probe_interval: int = 4
    max_swaps_per_op: int = 1
    swap_interval: int = 8
    swap_out_candidates: int = 32
    swap_in_candidates: int = 16
    min_improvement: float = 1e-9


class LocalRepairer:
    """Applies the three localized repair moves for one maintainer.

    Owns no state beyond references: the maintainer hands it the live
    graphs, tracker and reservoir it already keeps in lockstep.  Every
    mutation performed here goes through the same (graph, tracker,
    reservoir) bookkeeping the maintainer's own ops use.
    """

    def __init__(
        self,
        graph: Graph,
        reduced: Graph,
        tracker: DynamicDegreeTracker,
        reservoir: EdgeReservoir,
        config: RepairConfig,
    ) -> None:
        self._graph = graph
        self._reduced = reduced
        self._tracker = tracker
        self._reservoir = reservoir
        self._config = config
        self._calls = 0  # drives the probe/swap amortization intervals

    def rebind(self, reduced: Graph) -> None:
        """Point at the fresh ``G'`` a full rebuild produced."""
        self._reduced = reduced

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def repair(
        self,
        touched: Tuple[int, ...],
        promote_hints: Optional[Tuple[bool, ...]] = None,
    ) -> Dict[str, int]:
        """Run demote → promote → swap around ``touched``; return move counts.

        ``promote_hints`` marks the touched nodes whose spare capacity the
        operation *increased* — only those (plus any node demotion freed
        capacity at) can have newly become able to admit a held-back
        incident edge, so the local-promotion scan is skipped elsewhere.
        ``None`` scans every touched node (standalone use).
        """
        config = self._config
        self._calls += 1
        counts = {"demoted": 0, "promoted": 0, "swapped": 0}
        demote_freed = []
        for node_id in touched:
            demoted = self._demote(node_id)
            demote_freed.append(demoted > 0)
            counts["demoted"] += demoted
        for index, node_id in enumerate(touched):
            if (
                promote_hints is None
                or promote_hints[index]
                or demote_freed[index]
            ):
                counts["promoted"] += self._promote_local(node_id)
        if self._calls % config.probe_interval == 0:
            counts["promoted"] += self._promote_reservoir()
        if self._calls % config.swap_interval == 0:
            swaps_left = config.max_swaps_per_op
            for node_id in touched:
                if swaps_left <= 0:
                    break
                applied = self._swap(node_id, swaps_left)
                counts["swapped"] += applied
                swaps_left -= applied
        return counts

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------

    def _kept_neighbor_ids(self, node_id: int) -> np.ndarray:
        """Sorted ids of ``node_id``'s neighbours in ``G'`` (deterministic)."""
        tracker = self._tracker
        label = tracker.label_of(node_id)
        ids = [tracker.id_of(x) for x in self._reduced.neighbors(label)]
        return np.sort(np.asarray(ids, dtype=np.int64))

    def _demote(self, node_id: int) -> int:
        """Evict best-``d_1`` kept edges until ``dis ≤ demote_threshold``."""
        tracker = self._tracker
        threshold = self._config.demote_threshold + _EPSILON
        demoted = 0
        while tracker.dis(node_id) > threshold and tracker.kept_degree(node_id) > 0:
            neighbor_ids = self._kept_neighbor_ids(node_id)
            changes = tracker.remove_change_ids(
                np.full(neighbor_ids.shape[0], node_id, dtype=np.int64), neighbor_ids
            )
            other = int(neighbor_ids[int(np.argmin(changes))])
            self._evict(node_id, other)
            demoted += 1
        return demoted

    def _promote_local(self, node_id: int) -> int:
        """Admit held-back incident edges while capacities allow (best first)."""
        if not self._config.promote_local:
            return 0
        tracker = self._tracker
        spare = tracker.spare_capacity(node_id)
        if spare <= 0:
            return 0
        label = tracker.label_of(node_id)
        # Set difference in C: graph neighbours not currently kept.
        held_back = self._graph._adj[label].keys() - self._reduced._adj[label].keys()
        if not held_back:
            return 0
        index_of = tracker._index_of
        candidates = np.sort(
            np.fromiter(
                (index_of[x] for x in held_back),
                dtype=np.int64,
                count=len(held_back),
            )
        )
        # Most Δ-reducing first.  This node's spare shrinks per admission
        # (tracked locally); each far endpoint appears at most once (simple
        # graph), so far spares can be batch-computed up front.
        changes = tracker.add_change_ids(
            np.full(candidates.shape[0], node_id, dtype=np.int64), candidates
        )
        far_spares = tracker.capacities(candidates) - tracker._current[candidates]
        order = np.argsort(changes, kind="stable")
        promoted = 0
        for k in order.tolist():
            if spare <= 0:
                break
            if far_spares[k] <= 0:
                continue
            self._admit(node_id, int(candidates[k]))
            spare -= 1
            promoted += 1
        return promoted

    def _promote_reservoir(self) -> int:
        """Probe a bounded reservoir sample; promote capacity-fitting edges.

        Runs on every op, so the validity test is inlined over the graphs'
        adjacency dicts rather than going through :meth:`_valid_candidate`.
        """
        probes = self._config.reservoir_probes
        reservoir = self._reservoir
        if probes <= 0 or len(reservoir) == 0:
            return 0
        tracker = self._tracker
        labels = tracker._labels
        graph_adj = self._graph._adj
        reduced_adj = self._reduced._adj
        promoted = 0
        for key in reservoir.probe(probes):
            u, v = key
            lu, lv = labels[u], labels[v]
            if lv not in graph_adj[lu] or lv in reduced_adj[lu]:
                reservoir.discard(key)  # stale: left G or already kept
                continue
            if tracker.spare_capacity(u) > 0 and tracker.spare_capacity(v) > 0:
                reservoir.discard(key)
                self._admit(u, v)
                promoted += 1
        return promoted

    def _swap(self, node_id: int, budget: int) -> int:
        """Best Δ-improving capacity-feasible (kept-out, reservoir-in) swaps."""
        config = self._config
        tracker = self._tracker
        applied = 0
        while applied < budget and tracker.dis(node_id) > 0.5 + _EPSILON:
            out_ids = self._kept_neighbor_ids(node_id)[: config.swap_out_candidates]
            in_keys = [
                key
                for key in self._reservoir.probe(config.swap_in_candidates)
                if self._valid_candidate(*key)
            ]
            if out_ids.shape[0] == 0 or not in_keys:
                break
            num_out, num_in = out_ids.shape[0], len(in_keys)
            out_u = np.repeat(np.full(num_out, node_id, dtype=np.int64), num_in)
            out_v = np.repeat(out_ids, num_in)
            in_u = np.tile(np.asarray([a for a, _ in in_keys], dtype=np.int64), num_out)
            in_v = np.tile(np.asarray([b for _, b in in_keys], dtype=np.int64), num_out)
            changes = tracker.swap_change_ids(out_u, out_v, in_u, in_v)
            best = None
            for k in np.argsort(changes, kind="stable").tolist():
                if changes[k] >= -config.min_improvement:
                    break
                if self._swap_feasible(
                    int(out_u[k]), int(out_v[k]), int(in_u[k]), int(in_v[k])
                ):
                    best = k
                    break
            if best is None:
                break
            ou, ov = int(out_u[best]), int(out_v[best])
            iu, iv = int(in_u[best]), int(in_v[best])
            self._evict(ou, ov)
            self._reservoir.discard(_key(iu, iv))
            self._admit(iu, iv)
            applied += 1
        return applied

    # ------------------------------------------------------------------
    # Shared mutation plumbing
    # ------------------------------------------------------------------

    def _valid_candidate(self, u: int, v: int) -> bool:
        """Held-back means: still an edge of ``G`` and not already kept."""
        tracker = self._tracker
        lu, lv = tracker.label_of(u), tracker.label_of(v)
        return self._graph.has_edge(lu, lv) and not self._reduced.has_edge(lu, lv)

    def _swap_feasible(self, out_u: int, out_v: int, in_u: int, in_v: int) -> bool:
        """Would the in-edge fit both capacities once the out-edge is gone?"""
        tracker = self._tracker
        for endpoint in (in_u, in_v):
            freed = (endpoint == out_u) + (endpoint == out_v)
            if tracker.spare_capacity(endpoint) + freed <= 0:
                return False
        return True

    def _admit(self, u: int, v: int) -> None:
        tracker = self._tracker
        self._reduced.add_edge(tracker.label_of(u), tracker.label_of(v))
        tracker.kept_edge_added(u, v)

    def _evict(self, u: int, v: int) -> None:
        tracker = self._tracker
        self._reduced.remove_edge(tracker.label_of(u), tracker.label_of(v))
        tracker.kept_edge_removed(u, v)
        self._reservoir.offer(_key(u, v))


def _key(u: int, v: int) -> Tuple[int, int]:
    """Canonical id-tuple key for reservoir membership."""
    return (u, v) if u < v else (v, u)
