"""Δ-drift monitoring against the Theorem-2 envelope, with hysteresis.

"Demystifying Graph Sparsification Algorithms in Graph Properties
Preservation" (see PAPERS.md) observes that sparsifier quality degrades
*silently* under distribution shift; the incremental maintainer therefore
tracks its live ``Δ`` against the only quality promise the paper's offline
algorithm makes — Theorem 2's total-discrepancy envelope

    ``Δ_max(G) = (1/2 + (1−p)·|E|/|V|) · |V| = |V|/2 + (1−p)·|E|``

evaluated at the *live* ``|V|``/``|E|``.  Crossing ``drift_ratio ×
Δ_max`` schedules a full re-shed (amortized: a rebuild is O(|E|), so a
``cooldown_ops`` floor keeps the per-op cost O(|E|/cooldown)).  Two
anti-thrash guards:

* **hysteresis** — after a rebuild the monitor disarms until Δ has dipped
  below ``hysteresis × drift_ratio × Δ_max``, so a rebuild that lands near
  the threshold cannot immediately re-trigger;
* **cooldown** — at least ``cooldown_ops`` observations must pass between
  rebuilds regardless of Δ.  The cooldown window expiring also re-arms the
  monitor (hysteresis only suppresses rebuilds *within* the window) — a
  rebuild that lands between the hysteresis line and the threshold must
  not starve future rebuilds forever.

The monitor is pure policy: it never touches the graphs.  It consumes the
tracker's O(1) :attr:`~repro.dynamic.DynamicDegreeTracker.approx_delta`
(drift decisions do not need bit-exactness; checkpoints do and use
:meth:`~repro.dynamic.DynamicDegreeTracker.exact_delta`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.bounds import bm2_average_delta_bound
from repro.core.base import validate_ratio

__all__ = ["DriftMonitor", "DriftDecision"]


@dataclass(frozen=True)
class DriftDecision:
    """One :meth:`DriftMonitor.observe` verdict (returned for telemetry).

    Attributes:
        delta: the Δ that was observed.
        envelope: Theorem 2's ``Δ_max`` at the observed ``|V|``/``|E|``.
        threshold: ``drift_ratio × envelope`` — the rebuild trigger line.
        rebuild: whether the caller should rebuild now.
        armed: whether the monitor was armed *after* this observation.
    """

    delta: float
    envelope: float
    threshold: float
    rebuild: bool
    armed: bool

    @property
    def drift(self) -> float:
        """``delta / envelope`` (0.0 for a degenerate zero envelope)."""
        return self.delta / self.envelope if self.envelope > 0 else 0.0


class DriftMonitor:
    """Decide *when* incremental maintenance must give way to a rebuild.

    Args:
        p: the edge preservation ratio the maintainer runs at.
        drift_ratio: rebuild trigger as a multiple of the Theorem-2
            envelope.  1.0 (default) rebuilds the moment the live Δ leaves
            the zone a fresh BM2 run is guaranteed to land in.
        hysteresis: re-arm fraction in ``(0, 1]``; after a rebuild the
            monitor stays disarmed until Δ ≤ ``hysteresis × threshold``
            or the cooldown window expires, whichever comes first.
        cooldown_ops: minimum observations between rebuilds (amortization
            floor).  0 allows back-to-back rebuilds — the property tests
            use that to make "Δ never exceeds the threshold after any op"
            a hard invariant (hysteresis is then irrelevant, since the
            zero-length window re-arms immediately).
    """

    def __init__(
        self,
        p: float,
        drift_ratio: float = 1.0,
        hysteresis: float = 0.9,
        cooldown_ops: int = 0,
    ) -> None:
        self._p = validate_ratio(p)
        if drift_ratio <= 0:
            raise ValueError(f"drift_ratio must be positive, got {drift_ratio}")
        if not 0.0 < hysteresis <= 1.0:
            raise ValueError(f"hysteresis must be in (0, 1], got {hysteresis}")
        if cooldown_ops < 0:
            raise ValueError(f"cooldown_ops must be non-negative, got {cooldown_ops}")
        self.drift_ratio = float(drift_ratio)
        self.hysteresis = float(hysteresis)
        self.cooldown_ops = int(cooldown_ops)
        self._armed = True
        self._ops_since_rebuild = cooldown_ops  # first rebuild is never gated
        self._rebuilds = 0

    @property
    def p(self) -> float:
        return self._p

    @property
    def armed(self) -> bool:
        return self._armed

    @property
    def rebuilds(self) -> int:
        """How many rebuilds this monitor has requested."""
        return self._rebuilds

    def envelope(self, num_nodes: int, num_edges: int) -> float:
        """Theorem 2's total-Δ envelope ``|V|/2 + (1−p)·|E|`` (0.0 if empty)."""
        if num_nodes <= 0:
            return 0.0
        return bm2_average_delta_bound(self._p, num_edges, num_nodes) * num_nodes

    def observe(self, delta: float, num_nodes: int, num_edges: int) -> DriftDecision:
        """Record one post-op Δ; say whether the caller should rebuild now.

        The caller performs the rebuild itself (it owns the graphs) and then
        reports it via :meth:`notify_rebuild`.
        """
        self._ops_since_rebuild += 1
        envelope = self.envelope(num_nodes, num_edges)
        threshold = self.drift_ratio * envelope
        if not self._armed and (
            delta <= self.hysteresis * threshold
            or self._ops_since_rebuild >= self.cooldown_ops
        ):
            self._armed = True
        rebuild = (
            self._armed
            and delta > threshold
            and self._ops_since_rebuild >= self.cooldown_ops
        )
        return DriftDecision(
            delta=delta,
            envelope=envelope,
            threshold=threshold,
            rebuild=rebuild,
            armed=self._armed,
        )

    def observe_decide(
        self, delta: float, num_nodes: int, num_edges: int
    ) -> Tuple[bool, float, float]:
        """:meth:`observe` without the :class:`DriftDecision` allocation.

        Returns ``(rebuild, envelope, threshold)`` after performing state
        transitions identical to :meth:`observe` — the batched churn loop
        (:meth:`~repro.dynamic.IncrementalShedder.apply_ops`) calls this
        once per op, so the frozen-dataclass construction cost is paid only
        when a caller actually wants the full decision record.  The
        envelope arithmetic mirrors :meth:`envelope` /
        :func:`~repro.core.bounds.bm2_average_delta_bound` term for term,
        keeping the rebuild schedule bit-identical to the per-op path.
        """
        self._ops_since_rebuild += 1
        if num_nodes <= 0:
            envelope = 0.0
        else:
            # == bm2_average_delta_bound(p, m, n) * n, inlined (hot path).
            envelope = (
                0.5 + (1.0 - self._p) * num_edges / num_nodes
            ) * num_nodes
        threshold = self.drift_ratio * envelope
        if not self._armed and (
            delta <= self.hysteresis * threshold
            or self._ops_since_rebuild >= self.cooldown_ops
        ):
            self._armed = True
        rebuild = (
            self._armed
            and delta > threshold
            and self._ops_since_rebuild >= self.cooldown_ops
        )
        return rebuild, envelope, threshold

    def notify_rebuild(self) -> None:
        """The caller rebuilt: start the cooldown window and disarm.

        The monitor re-arms once Δ dips below the hysteresis line or the
        cooldown window expires, whichever comes first.
        """
        self._rebuilds += 1
        self._ops_since_rebuild = 0
        self._armed = False
