"""Incremental Δ-maintenance of a reduced graph under live edge churn.

The offline engines answer "given *this* graph, which edges go?"; real
deployments face a graph that keeps changing after the answer shipped.
:class:`IncrementalShedder` wraps a seed reduction from any
:class:`~repro.core.EdgeShedder` and keeps ``(G, G', Δ)`` consistent under
an insert/delete stream without re-running the O(|E|) offline pass per op:

* **insert(u, v)** — the edge joins ``G`` (both expectations ``p·deg``
  rise) and is admitted to ``G'`` iff both endpoints sit below their live
  Phase-1 capacities ``b(u) = [p·deg_G(u)]`` — exactly BM2's admission
  invariant, so an admission never increases ``Δ``.  Rejected edges enter
  a bounded :class:`~repro.streaming.EdgeReservoir` for later promotion.
* **delete(u, v)** — the edge leaves ``G``; if it was kept it leaves
  ``G'`` too, otherwise it is dropped from the reservoir.

Each op is O(1) amortized for the bookkeeping itself, plus a localized
:class:`~repro.dynamic.repair.LocalRepairer` pass (O(deg) around the two
touched endpoints) that restores the per-node guarantee, back-fills freed
capacity and applies bounded Δ-improving swaps.  A
:class:`~repro.dynamic.DriftMonitor` watches the running ``Δ`` against
Theorem 2's envelope at the *live* ``|V|``/``|E|``; when drift crosses the
configured ratio the maintainer amortizes a full offline re-shed
(:meth:`IncrementalShedder.rebuild`) and carries on incrementally from the
fresh seed.

The maintainer owns its graphs: mutate ``G`` only through
:meth:`insert` / :meth:`delete`.  Out-of-band mutations are detected via
:attr:`~repro.graph.Graph.version` and rejected with
:class:`~repro.errors.ReductionError` rather than silently corrupting the
tracked state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.base import EdgeShedder, validate_ratio
from repro.core.bm2 import BM2Shedder
from repro.dynamic.drift import DriftDecision, DriftMonitor
from repro.dynamic.repair import LocalRepairer, RepairConfig, _key
from repro.dynamic.tracker import DynamicDegreeTracker
from repro.errors import EdgeNotFoundError, ReductionError, SelfLoopError
from repro.graph.graph import Graph, Node
from repro.rng import RandomState, ensure_rng
from repro.streaming.shedder import EdgeReservoir

__all__ = ["BatchReport", "IncrementalShedder", "ChurnOp"]

#: One churn operation: ``("insert" | "delete", u, v)``.
ChurnOp = Tuple[str, Node, Node]


@dataclass(frozen=True)
class BatchReport:
    """Outcome of one :meth:`IncrementalShedder.apply_ops` batch.

    Attributes:
        applied: ops that mutated the maintainer (inserts + deletes).
        skipped: ops dropped by ``skip_invalid`` (stale deletes, duplicate
            inserts, self-loops) — always 0 in strict mode.
        rebuilds: drift-triggered full rebuilds performed inside the batch.
        decision: the drift verdict after the batch's *last applied* op
            (``None`` for an empty or fully-skipped batch), matching what
            :meth:`IncrementalShedder.apply` would have returned for it.
    """

    applied: int
    skipped: int
    rebuilds: int
    decision: Optional[DriftDecision]


class IncrementalShedder:
    """Maintain ``G' ⊆ G`` and its ``Δ`` under an edge churn stream.

    Args:
        graph: the live original graph.  The maintainer takes ownership —
            apply all further mutations through :meth:`insert` /
            :meth:`delete`.
        p: edge preservation ratio (the offline engines' ``p``).
        shedder: offline method producing the seed reduction (default:
            ``BM2Shedder(engine="array")``; BM2's per-node ``dis < 1``
            guarantee is what the default repair threshold preserves).
        rebuild_shedder: method used by drift-triggered rebuilds
            (default: ``shedder``).
        repair: :class:`RepairConfig` for the localized repair pass, or
            ``None`` to skip repair entirely (pure admit/evict mode).
        drift: :class:`DriftMonitor` watching Δ, or ``None`` for the
            default ``DriftMonitor(p)`` (rebuild at 1.0× the Theorem-2
            envelope, hysteresis 0.9).
        reservoir_size: capacity of the held-back edge reservoir.
        seed: randomness for the reservoir (probing and Algorithm-R
            replacement); seeded runs replay identically.
    """

    def __init__(
        self,
        graph: Graph,
        p: float,
        shedder: Optional[EdgeShedder] = None,
        *,
        rebuild_shedder: Optional[EdgeShedder] = None,
        repair: Optional[RepairConfig] = RepairConfig(),
        drift: Optional[DriftMonitor] = None,
        reservoir_size: int = 256,
        seed: RandomState = None,
    ) -> None:
        self._p = validate_ratio(p)
        self._graph = graph
        self._shedder = shedder if shedder is not None else BM2Shedder(engine="array")
        self._rebuild_shedder = (
            rebuild_shedder if rebuild_shedder is not None else self._shedder
        )
        self._monitor = drift if drift is not None else DriftMonitor(self._p)
        if self._monitor.p != self._p:
            raise ReductionError(
                f"drift monitor p={self._monitor.p} does not match maintainer p={self._p}"
            )
        seed_result = self._shedder.reduce(graph, self._p)
        self._reduced = seed_result.reduced
        for node in graph.nodes():  # keep V' = V under node growth
            self._reduced.add_node(node)
        self._tracker = DynamicDegreeTracker(graph, self._p)
        self._tracker.reset_kept(self._reduced)
        self._reservoir = EdgeReservoir(reservoir_size, seed=ensure_rng(seed))
        self._repair_config = repair
        self._repairer = (
            LocalRepairer(graph, self._reduced, self._tracker, self._reservoir, repair)
            if repair is not None
            else None
        )
        self._restock_reservoir()
        self.stats: Dict[str, int] = {
            "ops": 0,
            "inserts": 0,
            "deletes": 0,
            "admitted": 0,
            "rejected": 0,
            "evicted": 0,
            "demoted": 0,
            "promoted": 0,
            "swapped": 0,
            "rebuilds": 0,
        }
        self._sync_versions()

    # ------------------------------------------------------------------
    # Read-only views
    # ------------------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The live original graph ``G`` (do not mutate directly)."""
        return self._graph

    @property
    def reduced(self) -> Graph:
        """The live reduced graph ``G'`` (replaced by :meth:`rebuild`)."""
        return self._reduced

    @property
    def p(self) -> float:
        return self._p

    @property
    def delta(self) -> float:
        """Live ``Δ``, bit-identical to ``compute_delta(G, G', p)``."""
        return self._tracker.exact_delta()

    @property
    def approx_delta(self) -> float:
        """O(1) running ``Δ`` (what the drift monitor consumes)."""
        return self._tracker.approx_delta

    @property
    def tracker(self) -> DynamicDegreeTracker:
        return self._tracker

    @property
    def reservoir(self) -> EdgeReservoir:
        return self._reservoir

    @property
    def monitor(self) -> DriftMonitor:
        return self._monitor

    # ------------------------------------------------------------------
    # Churn operations
    # ------------------------------------------------------------------

    def insert(self, u: Node, v: Node) -> DriftDecision:
        """Insert edge ``(u, v)`` into ``G``; admit to ``G'`` if capacity fits.

        Raises :class:`~repro.errors.SelfLoopError` for ``u == v`` and
        :class:`~repro.errors.ReductionError` if the edge already exists
        (the stream must describe simple-graph mutations).
        """
        self._check_versions()
        if u == v:
            raise SelfLoopError(u)
        if self._graph.has_edge(u, v):
            raise ReductionError(f"edge ({u!r}, {v!r}) already in the graph")
        # Id assignment must mirror Graph.add_edge's add_node(u); add_node(v)
        # so tracker ids stay in graph insertion order (exact_delta contract).
        tracker = self._tracker
        tu = tracker.ensure_node(u)
        tv = tracker.ensure_node(v)
        self._graph.add_edge(u, v)
        self._reduced.add_node(u)
        self._reduced.add_node(v)
        cap_u, cap_v = tracker.capacity(tu), tracker.capacity(tv)
        tracker.graph_edge_added(tu, tv)
        new_cap_u, new_cap_v = tracker.capacity(tu), tracker.capacity(tv)
        if (
            new_cap_u > tracker.kept_degree(tu)
            and new_cap_v > tracker.kept_degree(tv)
        ):
            self._reduced.add_edge(u, v)
            tracker.kept_edge_added(tu, tv)
            self.stats["admitted"] += 1
            # Admission spends the grown capacity: no promotion hint.
            hints = (False, False)
        else:
            self._reservoir.offer(_key(tu, tv))
            self.stats["rejected"] += 1
            hints = (new_cap_u > cap_u, new_cap_v > cap_v)
        self.stats["inserts"] += 1
        return self._after_op((tu, tv), hints)

    def delete(self, u: Node, v: Node) -> DriftDecision:
        """Delete edge ``(u, v)`` from ``G`` (and from ``G'`` if kept).

        Raises :class:`~repro.errors.EdgeNotFoundError` if absent.
        """
        self._check_versions()
        if not self._graph.has_edge(u, v):
            raise EdgeNotFoundError(u, v)
        tracker = self._tracker
        tu = tracker.id_of(u)
        tv = tracker.id_of(v)
        was_kept = self._reduced.has_edge(u, v)
        self._graph.remove_edge(u, v)
        cap_u, cap_v = tracker.capacity(tu), tracker.capacity(tv)
        tracker.graph_edge_removed(tu, tv)
        if was_kept:
            self._reduced.remove_edge(u, v)
            tracker.kept_edge_removed(tu, tv)
            self.stats["evicted"] += 1
            # Eviction frees a unit of kept degree; spare grows unless the
            # capacity shrank with the degree.
            hints = (
                tracker.capacity(tu) == cap_u,
                tracker.capacity(tv) == cap_v,
            )
        else:
            self._reservoir.discard(_key(tu, tv))
            hints = (False, False)
        self.stats["deletes"] += 1
        return self._after_op((tu, tv), hints)

    def apply(self, op: ChurnOp) -> DriftDecision:
        """Apply one ``("insert" | "delete", u, v)`` churn operation."""
        kind, u, v = op
        if kind == "insert":
            return self.insert(u, v)
        if kind == "delete":
            return self.delete(u, v)
        raise ReductionError(f"unknown churn op {kind!r} (expected 'insert' or 'delete')")

    def replay(
        self, ops: Iterable[ChurnOp], collect_latencies: bool = False
    ) -> Optional[List[float]]:
        """Apply a churn stream; optionally return per-op latencies (seconds)."""
        if not collect_latencies:
            for op in ops:
                self.apply(op)
            return None
        latencies: List[float] = []
        for op in ops:
            start = time.perf_counter()
            self.apply(op)
            latencies.append(time.perf_counter() - start)
        return latencies

    def apply_ops(
        self, ops: Iterable[ChurnOp], *, skip_invalid: bool = False
    ) -> BatchReport:
        """Apply a batch of churn ops; bit-identical to the per-op loop.

        Semantically equivalent to ``for op in ops: self.apply(op)`` — the
        property suite pins G, G', Δ, stats, reservoir and drift-monitor
        state equal between the two — but the per-op Python overhead is
        amortized: the tracker arithmetic is inlined on native scalars
        (float64 math is the same IEEE double either way), the graphs and
        arrays are hoisted into locals, stats are buffered, the version
        handshake runs once per batch instead of once per op, and the drift
        monitor is consulted through the allocation-free
        :meth:`~repro.dynamic.DriftMonitor.observe_decide` path.

        Args:
            ops: iterable of ``("insert" | "delete", u, v)`` tuples.
            skip_invalid: when ``True``, ops that cannot apply to the
                *current* graph — self-loop inserts, inserts of existing
                edges, deletes of absent edges — are counted and skipped
                instead of raising.  The session drain loop relies on this
                to absorb deletes of edges whose insert was shed under
                backpressure.  Malformed kinds still raise: staleness is a
                stream property, an unknown op kind is a caller bug.

        In strict mode (default) the first invalid op raises exactly what
        :meth:`apply` would; ops already applied stay applied and their
        stats are flushed, matching a per-op loop that died at the same op.
        """
        self._check_versions()
        graph = self._graph
        adj = graph._adj
        order = graph._order
        tracker = self._tracker
        index_of = tracker._index_of
        ensure_node = tracker.ensure_node
        deg = tracker._deg
        cur = tracker._current
        dis = tracker._dis
        p = tracker._p
        approx = tracker._approx_delta
        reduced = self._reduced
        reduced_adj = reduced._adj
        repairer = self._repairer
        repair = repairer.repair if repairer is not None else None
        monitor = self._monitor
        drift_ratio = monitor.drift_ratio
        hysteresis = monitor.hysteresis
        cooldown = monitor.cooldown_ops
        one_minus_p = 1.0 - monitor._p
        reservoir_offer = self._reservoir.offer
        reservoir_discard = self._reservoir.discard
        # Graph and monitor counters mirrored into locals for the loop;
        # flushed back before every rebuild (which reads them through the
        # public surface) and in the finally block.  The graph's CSR cache
        # needs no explicit invalidation: it is version-checked on read,
        # and the version counter here advances exactly as Graph's own
        # mutators would.
        m = graph._num_edges
        gversion = graph._version
        next_order = graph._next_order
        ops_since = monitor._ops_since_rebuild
        armed = monitor._armed
        applied = skipped = ops_count = 0
        inserts = deletes = admitted = rejected = evicted = 0
        demoted = promoted = swapped = rebuild_count = 0
        last: Optional[Tuple[float, float, float, bool, bool]] = None
        try:
            for kind, u, v in ops:
                if kind == "insert":
                    if u == v:
                        if skip_invalid:
                            skipped += 1
                            continue
                        raise SelfLoopError(u)
                    adj_u = adj.get(u)
                    if adj_u is not None and v in adj_u:
                        if skip_invalid:
                            skipped += 1
                            continue
                        raise ReductionError(
                            f"edge ({u!r}, {v!r}) already in the graph"
                        )
                    # Id assignment mirrors insert(): u first, then v, before
                    # the graph mutation.  ensure_node may grow (replace) the
                    # arrays — re-hoist when it does.
                    tu = index_of.get(u)
                    if tu is None:
                        tu = ensure_node(u)
                        if tracker._deg is not deg:
                            deg, cur, dis = tracker._deg, tracker._current, tracker._dis
                    tv = index_of.get(v)
                    if tv is None:
                        tv = ensure_node(v)
                        if tracker._deg is not deg:
                            deg, cur, dis = tracker._deg, tracker._current, tracker._dis
                    # Graph.add_edge inlined (validity already established);
                    # node creation mirrors add_node(u) then add_node(v).
                    if adj_u is None:
                        adj[u] = adj_u = {}
                        order[u] = next_order
                        next_order += 1
                        gversion += 1
                    adj_v = adj.get(v)
                    if adj_v is None:
                        adj[v] = adj_v = {}
                        order[v] = next_order
                        next_order += 1
                        gversion += 1
                    adj_u[v] = None
                    adj_v[u] = None
                    m += 1
                    gversion += 1
                    if u not in reduced_adj:
                        reduced.add_node(u)
                    if v not in reduced_adj:
                        reduced.add_node(v)
                    du = deg[tu].item()
                    dv = deg[tv].item()
                    cap_u = int(p * du + 0.5)
                    cap_v = int(p * dv + 0.5)
                    du += 1
                    dv += 1
                    deg[tu] = du
                    deg[tv] = dv
                    # tracker.graph_edge_added's _retouch, on native scalars.
                    approx = approx - abs(dis[tu].item()) - abs(dis[tv].item())
                    cu = cur[tu].item()
                    cv = cur[tv].item()
                    dis_u = cu - p * du
                    dis_v = cv - p * dv
                    dis[tu] = dis_u
                    dis[tv] = dis_v
                    approx = approx + abs(dis_u) + abs(dis_v)
                    new_cap_u = int(p * du + 0.5)
                    new_cap_v = int(p * dv + 0.5)
                    if new_cap_u > cu and new_cap_v > cv:
                        reduced.add_edge(u, v)
                        # tracker.kept_edge_added's _retouch.
                        cu += 1
                        cv += 1
                        cur[tu] = cu
                        cur[tv] = cv
                        approx = approx - abs(dis_u) - abs(dis_v)
                        dis_u = cu - p * du
                        dis_v = cv - p * dv
                        dis[tu] = dis_u
                        dis[tv] = dis_v
                        approx = approx + abs(dis_u) + abs(dis_v)
                        admitted += 1
                        hint_u = hint_v = False
                    else:
                        reservoir_offer((tu, tv) if tu < tv else (tv, tu))
                        rejected += 1
                        hint_u = new_cap_u > cap_u
                        hint_v = new_cap_v > cap_v
                    inserts += 1
                elif kind == "delete":
                    adj_u = adj.get(u)
                    if adj_u is None or v not in adj_u:
                        if skip_invalid:
                            skipped += 1
                            continue
                        raise EdgeNotFoundError(u, v)
                    tu = index_of[u]
                    tv = index_of[v]
                    ru = reduced_adj.get(u)
                    was_kept = ru is not None and v in ru
                    # Graph.remove_edge inlined (existence already checked).
                    del adj_u[v]
                    del adj[v][u]
                    m -= 1
                    gversion += 1
                    du = deg[tu].item()
                    dv = deg[tv].item()
                    cap_u = int(p * du + 0.5)
                    cap_v = int(p * dv + 0.5)
                    du -= 1
                    dv -= 1
                    deg[tu] = du
                    deg[tv] = dv
                    # tracker.graph_edge_removed's _retouch.
                    approx = approx - abs(dis[tu].item()) - abs(dis[tv].item())
                    cu = cur[tu].item()
                    cv = cur[tv].item()
                    dis_u = cu - p * du
                    dis_v = cv - p * dv
                    dis[tu] = dis_u
                    dis[tv] = dis_v
                    approx = approx + abs(dis_u) + abs(dis_v)
                    if was_kept:
                        reduced.remove_edge(u, v)
                        # tracker.kept_edge_removed's _retouch.
                        cu -= 1
                        cv -= 1
                        cur[tu] = cu
                        cur[tv] = cv
                        approx = approx - abs(dis_u) - abs(dis_v)
                        dis_u = cu - p * du
                        dis_v = cv - p * dv
                        dis[tu] = dis_u
                        dis[tv] = dis_v
                        approx = approx + abs(dis_u) + abs(dis_v)
                        evicted += 1
                        hint_u = int(p * du + 0.5) == cap_u
                        hint_v = int(p * dv + 0.5) == cap_v
                    else:
                        reservoir_discard((tu, tv) if tu < tv else (tv, tu))
                        hint_u = hint_v = False
                    deletes += 1
                else:
                    raise ReductionError(
                        f"unknown churn op {kind!r} (expected 'insert' or 'delete')"
                    )
                # _after_op, inlined.  Repair mutates tracker state through
                # tracker methods: publish the running Δ first, re-read after.
                tracker._approx_delta = approx
                if repair is not None:
                    counts = repair((tu, tv), (hint_u, hint_v))
                    demoted += counts["demoted"]
                    promoted += counts["promoted"]
                    swapped += counts["swapped"]
                    approx = tracker._approx_delta
                ops_count += 1
                # DriftMonitor.observe_decide inlined.  An applied op always
                # leaves the graph non-empty, so the zero-node envelope
                # guard is unreachable here.
                ops_since += 1
                n_nodes = len(adj)
                envelope = (0.5 + one_minus_p * m / n_nodes) * n_nodes
                threshold = drift_ratio * envelope
                if not armed and (
                    approx <= hysteresis * threshold or ops_since >= cooldown
                ):
                    armed = True
                do_rebuild = (
                    armed and approx > threshold and ops_since >= cooldown
                )
                last = (approx, envelope, threshold, do_rebuild, armed)
                if do_rebuild:
                    graph._num_edges = m
                    graph._version = gversion
                    graph._next_order = next_order
                    monitor._ops_since_rebuild = ops_since
                    monitor._armed = armed
                    self.rebuild()  # bumps stats["rebuilds"], syncs versions
                    rebuild_count += 1
                    reduced = self._reduced
                    reduced_adj = reduced._adj
                    approx = tracker._approx_delta
                    ops_since = monitor._ops_since_rebuild
                    armed = monitor._armed
                applied += 1
        finally:
            # No approx write-back here: every op's epilogue already
            # published it, and overwriting after a mid-repair exception
            # would clobber the repairer's tracker-side updates.
            graph._num_edges = m
            graph._version = gversion
            graph._next_order = next_order
            monitor._ops_since_rebuild = ops_since
            monitor._armed = armed
            stats = self.stats
            stats["ops"] += ops_count
            stats["inserts"] += inserts
            stats["deletes"] += deletes
            stats["admitted"] += admitted
            stats["rejected"] += rejected
            stats["evicted"] += evicted
            stats["demoted"] += demoted
            stats["promoted"] += promoted
            stats["swapped"] += swapped
            self._sync_versions()
        decision = None
        if last is not None:
            delta, envelope, threshold, do_rebuild, armed = last
            decision = DriftDecision(
                delta=delta,
                envelope=envelope,
                threshold=threshold,
                rebuild=do_rebuild,
                armed=armed,
            )
        return BatchReport(
            applied=applied,
            skipped=skipped,
            rebuilds=rebuild_count,
            decision=decision,
        )

    # ------------------------------------------------------------------
    # Rebuild
    # ------------------------------------------------------------------

    def rebuild(self) -> None:
        """Re-shed ``G`` offline and resume incrementally from the result.

        Replaces :attr:`reduced` with a **new** graph object (callers
        holding the old reference keep a stale snapshot), resynchronises
        the tracker, and restocks the reservoir with the fresh shed set.
        """
        if self._graph.num_edges == 0:
            return  # nothing to shed; current (empty) G' is already exact
        result = self._rebuild_shedder.reduce(self._graph, self._p)
        self._reduced = result.reduced
        for node in self._graph.nodes():
            self._reduced.add_node(node)
        self._tracker.reset_kept(self._reduced)
        if self._repairer is not None:
            self._repairer.rebind(self._reduced)
        self._restock_reservoir()
        self._monitor.notify_rebuild()
        self.stats["rebuilds"] += 1
        self._sync_versions()

    def _restock_reservoir(self) -> None:
        """Refill the reservoir with the current shed set (G edges not kept)."""
        self._reservoir.clear()
        tracker = self._tracker
        reduced = self._reduced
        for a, b in self._graph.edges():  # deterministic insertion order
            if not reduced.has_edge(a, b):
                self._reservoir.offer(_key(tracker.id_of(a), tracker.id_of(b)))

    # ------------------------------------------------------------------
    # Per-op epilogue
    # ------------------------------------------------------------------

    def _after_op(
        self, touched: Tuple[int, int], hints: Tuple[bool, bool]
    ) -> DriftDecision:
        """Repair around ``touched``, consult the drift monitor, maybe rebuild."""
        if self._repairer is not None:
            counts = self._repairer.repair(touched, hints)
            self.stats["demoted"] += counts["demoted"]
            self.stats["promoted"] += counts["promoted"]
            self.stats["swapped"] += counts["swapped"]
        self.stats["ops"] += 1
        decision = self._monitor.observe(
            self._tracker.approx_delta, self._graph.num_nodes, self._graph.num_edges
        )
        if decision.rebuild:
            self.rebuild()
        else:
            self._sync_versions()
        return decision

    # ------------------------------------------------------------------
    # Out-of-band mutation detection
    # ------------------------------------------------------------------

    def _sync_versions(self) -> None:
        self._graph_version = self._graph.version
        self._reduced_version = self._reduced.version

    def _check_versions(self) -> None:
        if (
            self._graph.version != self._graph_version
            or self._reduced.version != self._reduced_version
        ):
            raise ReductionError(
                "graph mutated outside the maintainer; IncrementalShedder owns "
                "its graphs — apply mutations via insert()/delete()"
            )
