"""Growable array-native Δ state for a *mutating* original graph.

:class:`~repro.core.discrepancy.ArrayDegreeTracker` is frozen to one CSR
snapshot: its node ids, expectations ``p·deg_G(u)`` and edge-key universe
are fixed at construction, which is exactly right for offline shedding and
exactly wrong under churn, where every insert/delete moves *both* sides of
``dis(u) = deg_G'(u) − p·deg_G(u)``.

:class:`DynamicDegreeTracker` keeps the same flat-array layout (``deg``,
``current``, ``dis`` per integer id) but lets the node universe grow
(amortized-doubling arrays, ids assigned in first-seen order so they always
mirror the live graph's insertion order) and maintains both sides of
``dis`` per operation:

* a **graph-side** event (edge inserted into / deleted from ``G``) moves
  ``p·deg``;
* a **kept-side** event (edge admitted to / evicted from ``G'``) moves
  ``current``.

Every touched ``dis`` slot is rewritten as ``current − p·deg`` — the exact
product-and-subtract a from-scratch :func:`repro.core.compute_delta` would
perform, never an incremental float drift.  ``Δ`` itself is maintained two
ways: :attr:`approx_delta` is the O(1) running sum (used by the per-op
drift monitor; carries float-association noise of order 1e-12 per op), and
:meth:`exact_delta` re-sums ``Σ|current − p·deg|`` in id order, which is
**bit-identical** to ``compute_delta(G, G', p)`` on the live graphs — the
checkpoint contract the property suite pins.

Scoring (``add_change_ids`` / ``remove_change_ids`` / ``swap_change_ids``)
delegates to the shared formulas in :mod:`repro.core.discrepancy`, so the
localized repair pass prices moves with the very arithmetic the offline
engines use.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.discrepancy import (
    add_change_from_dis,
    remove_change_from_dis,
    round_half_up,
    swap_change_from_dis,
    swap_change_scalar_from_dis,
    weighted_add_change_from_dis,
    weighted_remove_change_from_dis,
    weighted_swap_change_from_dis,
)
from repro.errors import InvalidRatioError
from repro.graph.graph import Graph, Node

__all__ = ["DynamicDegreeTracker"]

#: Initial array capacity for trackers seeded from an empty-ish graph.
_MIN_CAPACITY = 16


class DynamicDegreeTracker:
    """Per-node ``deg_G`` / ``deg_G'`` / ``dis`` arrays under live churn.

    Construct from the *current* original graph and the reduced edge set
    (any iterable of edges); thereafter the owner reports every mutation
    through the four event methods.  The tracker never touches the graphs
    themselves — it is pure bookkeeping, and
    :class:`~repro.dynamic.IncrementalShedder` is the component that keeps
    the graphs and this state in lockstep.
    """

    def __init__(self, graph: Graph, p: float, weighted: bool = False) -> None:
        if not 0.0 < p < 1.0:
            raise InvalidRatioError(p)
        self._p = float(p)
        self._weighted = bool(weighted)
        n = graph.num_nodes
        capacity = max(_MIN_CAPACITY, n)
        #: label <-> id in first-seen order (== graph insertion order).
        self._labels: List[Node] = []
        self._index_of: Dict[Node, int] = {}
        # Weighted mode tracks probability mass, so both degree sides turn
        # float and every event carries the edge's weight; the unweighted
        # int64 layout (and arithmetic) is untouched.
        degree_dtype = np.float64 if weighted else np.int64
        #: live degree (expected-degree mass when weighted) in G per id.
        self._deg = np.zeros(capacity, dtype=degree_dtype)
        #: live degree (mass when weighted) in G' per id.
        self._current = np.zeros(capacity, dtype=degree_dtype)
        #: float64 — current − p·deg, rewritten per touched slot.
        self._dis = np.zeros(capacity, dtype=np.float64)
        self._n = 0
        self._approx_delta = 0.0
        for node in graph.nodes():
            self.ensure_node(node)
        if n:
            if weighted:
                degrees = np.fromiter(
                    (graph.weighted_degree(node) for node in graph.nodes()),
                    dtype=np.float64,
                    count=n,
                )
            else:
                degrees = np.fromiter(
                    (graph.degree(node) for node in graph.nodes()), dtype=np.int64, count=n
                )
            self._deg[:n] = degrees
            self._dis[:n] = self._current[:n] - self._p * degrees
            self._approx_delta = float(np.abs(self._dis[:n]).sum())

    # ------------------------------------------------------------------
    # Node universe
    # ------------------------------------------------------------------

    @property
    def p(self) -> float:
        return self._p

    @property
    def num_nodes(self) -> int:
        return self._n

    @property
    def weighted(self) -> bool:
        """Whether this tracker scores probability mass instead of counts."""
        return self._weighted

    def ensure_node(self, node: Node) -> int:
        """Return ``node``'s id, assigning the next one on first sight."""
        node_id = self._index_of.get(node)
        if node_id is not None:
            return node_id
        node_id = self._n
        if node_id == self._deg.shape[0]:
            self._grow()
        self._index_of[node] = node_id
        self._labels.append(node)
        self._n += 1
        # Fresh slots are already zeroed: deg = current = dis = 0.
        return node_id

    def _grow(self) -> None:
        capacity = 2 * self._deg.shape[0]
        for name in ("_deg", "_current", "_dis"):
            old = getattr(self, name)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[: old.shape[0]] = old
            setattr(self, name, grown)

    def id_of(self, node: Node) -> int:
        return self._index_of[node]

    def label_of(self, node_id: int) -> Node:
        return self._labels[node_id]

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    @property
    def approx_delta(self) -> float:
        """O(1) running ``Δ`` (float-association noise; see module doc)."""
        return self._approx_delta

    def exact_delta(self) -> float:
        """``Δ`` re-summed from scratch, bit-identical to ``compute_delta``.

        Same per-node term (``|current − p·deg|`` with ``p·deg`` formed as
        one product) and the same left-to-right id-order summation as
        :func:`repro.core.compute_delta` over the live graphs.  O(n).
        """
        n = self._n
        terms = np.abs(self._current[:n] - self._p * self._deg[:n])
        return float(sum(terms.tolist()))

    def graph_degree(self, node_id: int):
        """Live degree in ``G`` — an int, or a float mass when weighted."""
        value = self._deg[node_id]
        return float(value) if self._weighted else int(value)

    def kept_degree(self, node_id: int):
        """Live degree in ``G'`` — an int, or a float mass when weighted."""
        value = self._current[node_id]
        return float(value) if self._weighted else int(value)

    def dis(self, node_id: int) -> float:
        return float(self._dis[node_id])

    def dis_array(self) -> np.ndarray:
        """``float64[num_nodes]`` of live ``dis`` per id.  Treat as read-only."""
        return self._dis[: self._n]

    def capacity(self, node_id: int) -> int:
        """BM2's Phase-1 capacity ``b(u) = [p·deg_G(u)]`` at the live degree.

        ``p·deg ≥ 0``, so plain truncation of ``p·deg + 0.5`` equals
        :func:`~repro.core.discrepancy.round_half_up` — kept inline because
        this sits on the repair pass's hot path.
        """
        return int(self._p * self._deg[node_id] + 0.5)

    def spare_capacity(self, node_id: int) -> int:
        """``b(u) − deg_G'(u)``: admissions left before Phase 1 would refuse."""
        return int(self._p * self._deg[node_id] + 0.5) - int(self._current[node_id])

    def capacities(self, ids: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`capacity` (elementwise identical to the scalar)."""
        return np.floor(self._p * self._deg[ids] + 0.5).astype(np.int64)

    # ------------------------------------------------------------------
    # Events (the owner reports each graph / kept-set mutation once)
    # ------------------------------------------------------------------

    def _retouch(self, u: int, v: int) -> None:
        """Rewrite two dis slots from their exact sides; update running Δ.

        The ``.item()`` pulls convert numpy scalars to native Python numbers
        up front so the arithmetic below runs on the fast scalar path — this
        is the single most-called method under churn.
        """
        dis, current, deg, p = self._dis, self._current, self._deg, self._p
        delta = self._approx_delta - abs(dis[u].item()) - abs(dis[v].item())
        new_u = current[u].item() - p * deg[u].item()
        new_v = current[v].item() - p * deg[v].item()
        dis[u] = new_u
        dis[v] = new_v
        self._approx_delta = delta + abs(new_u) + abs(new_v)

    def graph_edge_added(self, u: int, v: int, weight: float = 1) -> None:
        """An edge joined ``G``: both expectations rise by ``p`` (·weight).

        ``weight`` (only meaningful on a weighted tracker; the int default
        keeps the unweighted int64 arithmetic untouched) is the edge's
        probability mass.
        """
        self._deg[u] += weight
        self._deg[v] += weight
        self._retouch(u, v)

    def graph_edge_removed(self, u: int, v: int, weight: float = 1) -> None:
        """An edge left ``G``: both expectations drop by ``p`` (·weight)."""
        self._deg[u] -= weight
        self._deg[v] -= weight
        self._retouch(u, v)

    def kept_edge_added(self, u: int, v: int, weight: float = 1) -> None:
        """An edge was admitted to ``G'``."""
        self._current[u] += weight
        self._current[v] += weight
        self._retouch(u, v)

    def kept_edge_removed(self, u: int, v: int, weight: float = 1) -> None:
        """An edge was evicted from ``G'``."""
        self._current[u] -= weight
        self._current[v] -= weight
        self._retouch(u, v)

    def reset_kept(self, reduced: Graph) -> None:
        """Resynchronise the kept side after a full rebuild replaced ``G'``."""
        n = self._n
        index_of = self._index_of
        if self._weighted:
            current = np.zeros(n, dtype=np.float64)
            for a, b, w in reduced.edge_weights():
                current[index_of[a]] += w
                current[index_of[b]] += w
        else:
            current = np.zeros(n, dtype=np.int64)
            for a, b in reduced.edges():
                current[index_of[a]] += 1
                current[index_of[b]] += 1
        self._current[:n] = current
        self._dis[:n] = current - self._p * self._deg[:n]
        self._approx_delta = float(np.abs(self._dis[:n]).sum())

    # ------------------------------------------------------------------
    # Scoring (shared formulas; see repro.core.discrepancy)
    # ------------------------------------------------------------------

    def add_change_ids(self, edge_u: np.ndarray, edge_v: np.ndarray) -> np.ndarray:
        """Vectorized Δ-change of admitting each edge (paper's ``d_2``)."""
        return add_change_from_dis(self._dis, edge_u, edge_v)

    def remove_change_ids(self, edge_u: np.ndarray, edge_v: np.ndarray) -> np.ndarray:
        """Vectorized Δ-change of evicting each edge (paper's ``d_1``)."""
        return remove_change_from_dis(self._dis, edge_u, edge_v)

    def swap_change_ids(
        self,
        out_u: np.ndarray,
        out_v: np.ndarray,
        in_u: np.ndarray,
        in_v: np.ndarray,
    ) -> np.ndarray:
        """Vectorized exact swap change (shared-endpoint positions exact)."""
        return swap_change_from_dis(self._dis, out_u, out_v, in_u, in_v)

    def swap_change_scalar_ids(self, out_u: int, out_v: int, in_u: int, in_v: int) -> float:
        """Exact joint swap change for one id quadruple."""
        return swap_change_scalar_from_dis(self._dis, out_u, out_v, in_u, in_v)

    def weighted_add_change_ids(
        self, edge_u: np.ndarray, edge_v: np.ndarray, weight: np.ndarray
    ) -> np.ndarray:
        """Weighted ``d_2``: each edge moves its endpoints by its weight."""
        return weighted_add_change_from_dis(self._dis, edge_u, edge_v, weight)

    def weighted_remove_change_ids(
        self, edge_u: np.ndarray, edge_v: np.ndarray, weight: np.ndarray
    ) -> np.ndarray:
        """Weighted ``d_1`` over endpoint id arrays."""
        return weighted_remove_change_from_dis(self._dis, edge_u, edge_v, weight)

    def weighted_swap_change_ids(
        self,
        out_u: np.ndarray,
        out_v: np.ndarray,
        in_u: np.ndarray,
        in_v: np.ndarray,
        w_out: np.ndarray,
        w_in: np.ndarray,
    ) -> np.ndarray:
        """Vectorized exact weighted swap change (shared endpoints exact)."""
        return weighted_swap_change_from_dis(
            self._dis, out_u, out_v, in_u, in_v, w_out, w_in
        )
