"""Dynamic shedding: incremental Δ-maintenance under live edge churn.

The offline engines (:mod:`repro.core`) answer the paper's static question;
this package keeps their answer *alive* while the graph mutates.  The
division of labour:

* :class:`DynamicDegreeTracker` — growable array-native ``(deg, current,
  dis)`` state; O(1) per event, bit-identical checkpoint Δ.
* :class:`IncrementalShedder` — owns ``(G, G')``; capacity-gated
  admission on insert, eviction on delete, O(1) amortized per op.
* :class:`LocalRepairer` / :class:`RepairConfig` — localized demote /
  promote / swap repair around the touched endpoints.
* :class:`DriftMonitor` / :class:`DriftDecision` — rebuild policy against
  the Theorem-2 envelope at the live graph size, with hysteresis.
* :mod:`~repro.dynamic.workloads` — seeded churn generators for tests,
  benchmarks and the ``dynamic`` CLI subcommand.
"""

from repro.dynamic.drift import DriftDecision, DriftMonitor
from repro.dynamic.maintainer import BatchReport, ChurnOp, IncrementalShedder
from repro.dynamic.repair import LocalRepairer, RepairConfig
from repro.dynamic.tracker import DynamicDegreeTracker
from repro.dynamic.workloads import (
    WORKLOADS,
    generate_workload,
    insert_only_growth,
    mixed_churn,
    sliding_window,
)

__all__ = [
    "BatchReport",
    "ChurnOp",
    "DriftDecision",
    "DriftMonitor",
    "DynamicDegreeTracker",
    "IncrementalShedder",
    "LocalRepairer",
    "RepairConfig",
    "WORKLOADS",
    "generate_workload",
    "insert_only_growth",
    "mixed_churn",
    "sliding_window",
]
