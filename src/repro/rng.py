"""Seeded random-number plumbing shared across the library.

Every stochastic component in this package (graph generators, CRR's rewiring
phase, node2vec walks, k-means initialisation, ...) accepts either an integer
seed, a :class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng`
normalises those three spellings into a ``Generator`` so algorithm code never
has to special-case its ``seed`` argument.

Determinism contract: two calls with the same integer seed produce identical
streams, and :func:`spawn` derives independent child generators so that two
sub-components seeded from the same parent do not share a stream.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["RandomState", "ensure_rng", "spawn"]

#: Anything accepted where a source of randomness is required.
RandomState = Union[None, int, np.random.Generator]


def ensure_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` yields a fresh nondeterministic generator, an ``int`` yields a
    deterministic one, and an existing ``Generator`` is passed through
    unchanged (so callers can thread one generator through a pipeline).
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed).__name__}"
    )


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used when an experiment fans out into sub-experiments that must not
    share a random stream (e.g. one generator per dataset per ``p`` value).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
