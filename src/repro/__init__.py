"""repro — Selective Edge Shedding in Large Graphs Under Resource Constraints.

A complete reproduction of Zeng, Song & Ge (ICDE 2021): two vertex-degree
preserving edge-shedding algorithms (CRR and BM2), the UDS summarization
baseline they compare against, the seven graph-analysis evaluation tasks,
and the benchmark harness that regenerates every table and figure of the
paper's evaluation.

Quickstart::

    from repro import load_dataset, CRRShedder, BM2Shedder, all_tasks

    graph = load_dataset("ca-grqc")
    result = BM2Shedder(seed=0).reduce(graph, p=0.5)
    print(result.summary())
    for task in all_tasks(seed=0, num_sources=64):
        print(task.name, task.evaluate(graph, result).utility)
"""

from repro.analysis import GraphStats, estimation_report, graph_stats
from repro.baselines import GraphSummary, UDSSummarizer
from repro.core import (
    BM2Shedder,
    CoreShedder,
    CRRShedder,
    DegreeProportionalShedder,
    DegreeTracker,
    EdgeShedder,
    JaccardShedder,
    LocalDegreeShedder,
    RandomShedder,
    ReductionResult,
    bm2_average_delta_bound,
    bm2_bound_for_graph,
    compute_delta,
    crr_average_delta_bound,
    crr_bound_for_graph,
    progressive_reduce,
    round_half_up,
)
from repro.datasets import available_datasets, dataset_spec, load_dataset
from repro.errors import (
    BenchError,
    DatasetError,
    EdgeNotFoundError,
    EmbeddingError,
    GraphError,
    InvalidRatioError,
    NodeNotFoundError,
    ReductionError,
    ReproError,
    SelfLoopError,
    TaskError,
)
from repro.graph import Graph
from repro.shard import ShardedShedder, ShardPlan, partition_graph
from repro.tasks import (
    BetweennessCentralityTask,
    ClusteringCoefficientTask,
    DegreeDistributionTask,
    GraphTask,
    HopPlotTask,
    LinkPredictionTask,
    ShortestPathDistanceTask,
    TaskEvaluation,
    TopKQueryTask,
    WeightedDegreeDistributionTask,
    all_tasks,
)
from repro.uncertain import (
    WeightedBM2Shedder,
    WeightedCRRShedder,
    expected_degree_distance,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph
    "Graph",
    # core algorithms
    "EdgeShedder",
    "ReductionResult",
    "CRRShedder",
    "BM2Shedder",
    "RandomShedder",
    "DegreeProportionalShedder",
    "CoreShedder",
    "LocalDegreeShedder",
    "JaccardShedder",
    "progressive_reduce",
    "GraphStats",
    "graph_stats",
    "estimation_report",
    "DegreeTracker",
    "compute_delta",
    "round_half_up",
    "crr_average_delta_bound",
    "bm2_average_delta_bound",
    "crr_bound_for_graph",
    "bm2_bound_for_graph",
    # baseline
    "UDSSummarizer",
    "GraphSummary",
    # sharded shedding
    "ShardedShedder",
    "ShardPlan",
    "partition_graph",
    # uncertain/weighted shedding
    "WeightedCRRShedder",
    "WeightedBM2Shedder",
    "expected_degree_distance",
    # datasets
    "load_dataset",
    "available_datasets",
    "dataset_spec",
    # tasks
    "GraphTask",
    "TaskEvaluation",
    "all_tasks",
    "DegreeDistributionTask",
    "WeightedDegreeDistributionTask",
    "ShortestPathDistanceTask",
    "BetweennessCentralityTask",
    "ClusteringCoefficientTask",
    "HopPlotTask",
    "TopKQueryTask",
    "LinkPredictionTask",
    # errors
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "SelfLoopError",
    "ReductionError",
    "InvalidRatioError",
    "DatasetError",
    "EmbeddingError",
    "TaskError",
    "BenchError",
]
