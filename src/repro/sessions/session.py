"""One streaming session: an op inbox feeding an incremental maintainer.

A :class:`StreamSession` is the unit the session layer multiplexes: it
owns one :class:`~repro.dynamic.IncrementalShedder` (and therefore one
``(G, G', Δ)`` triple plus a :class:`~repro.dynamic.DriftMonitor`), a
bounded :class:`asyncio.Queue` inbox of churn ops, and the per-session
accounting — backpressure state machine, resident-edge ledger charge,
and a private :class:`~repro.service.MetricsRegistry`.

**Backpressure is explicit, never a silent drop.**  The inbox depth
drives a three-state machine over the paper's own vocabulary:

* ``apply`` — every submitted op is enqueued;
* ``shed`` (depth ≥ ``shed_watermark``) — deletes still enqueue (they
  keep ``G`` truthful), inserts are *shed*: counted, reported in the
  :class:`SubmitReceipt`, and simply never become part of ``G``.  This
  is selective edge shedding applied to the ingest path itself — under
  pressure the session drops the ops that only ever add optional edges.
  A later delete of a shed edge is absorbed by the drain loop's
  ``skip_invalid`` replay and counted as a skipped (stale) op;
* ``reject`` (inbox full) — everything is refused and the client must
  back off and retry.

Both degraded states exit with hysteresis: only once the drain loop has
pulled the depth back to ``apply_watermark`` does the session return to
``apply``, so a client hovering at the boundary cannot flap the state
per op.

**Determinism contract.**  Every op the session *applies* goes through
:meth:`IncrementalShedder.apply_ops` in submission order, so a paced
client (one that never trips backpressure — e.g. it awaits
:meth:`StreamSession.flush` between submissions) gets a ``G'``
bit-identical to driving the maintainer directly with the same op
sequence.  The property suite pins exactly that.

Sessions are created by :class:`~repro.sessions.SessionManager` — the
manager owns the worker pool, the shared ledger and the fairness policy;
everything here is per-session state plus the inline batch-application
logic its workers call.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.base import ReductionResult
from repro.core.progressive import rescore_result
from repro.dynamic.drift import DriftDecision
from repro.dynamic.maintainer import ChurnOp, IncrementalShedder
from repro.dynamic.repair import RepairConfig
from repro.errors import SessionError
from repro.graph.io import graph_from_payload, graph_to_payload
from repro.service.admission import BudgetLedger
from repro.service.store import ArtifactKey, ArtifactStore
from repro.service.metrics import (
    MetricsRegistry,
    OP_LATENCY_BOUNDS,
    latency_us_summary,
)

__all__ = [
    "APPLY",
    "REJECT",
    "SHED",
    "SessionConfig",
    "StreamSession",
    "SubmitReceipt",
]

#: Backpressure states (plain strings so telemetry dicts stay JSON-ready).
APPLY = "apply"
SHED = "shed"
REJECT = "reject"


@dataclass(frozen=True)
class SessionConfig:
    """Per-session knobs: the maintainer's, the inbox's, the ledger's.

    Attributes:
        p: edge preservation ratio for the maintained reduction.
        method: offline method seeding the reduction (and used by
            drift-triggered rebuilds) — any :data:`~repro.service.KNOWN_METHODS`
            key.
        engine: engine for the seed shedder where the method has one.
        seed: routed to the maintainer's reservoir; seeded sessions
            replay identically.
        repair: :class:`~repro.dynamic.RepairConfig` for localized repair,
            or ``None`` for pure admit/evict mode (the high-throughput
            configuration).
        drift_ratio / drift_hysteresis / drift_cooldown_ops: the
            :class:`~repro.dynamic.DriftMonitor` policy.
        reservoir_size: held-back edge pool capacity.
        inbox_capacity: bound of the op inbox; its fill level drives the
            backpressure states.
        batch_ops: max ops one drain turn applies — the fairness quantum:
            a session never holds a worker longer than one batch.
        shed_watermark: inbox fill fraction at which inserts shed.
        apply_watermark: fill fraction at which a degraded state returns
            to ``apply`` (hysteresis exit; must sit below
            ``shed_watermark``).
        ledger_chunk: granularity (edges) of ledger resizes under churn;
            shrink releases keep one chunk of headroom so a hovering
            session does not thrash the ledger.
        label: free-form tag echoed through telemetry.
    """

    p: float
    method: str = "bm2"
    engine: str = "array"
    seed: int = 0
    repair: Optional[RepairConfig] = RepairConfig()
    drift_ratio: float = 1.0
    drift_hysteresis: float = 0.9
    drift_cooldown_ops: int = 0
    reservoir_size: int = 256
    inbox_capacity: int = 4096
    batch_ops: int = 512
    shed_watermark: float = 0.75
    apply_watermark: float = 0.5
    ledger_chunk: int = 1024
    label: str = ""

    def validate(self) -> None:
        """Raise :class:`~repro.errors.SessionError` for unusable knobs."""
        if not 0.0 < float(self.p) < 1.0:
            raise SessionError(f"p must be in (0, 1), got {self.p!r}")
        if self.inbox_capacity < 1:
            raise SessionError(
                f"inbox_capacity must be >= 1, got {self.inbox_capacity}"
            )
        if self.batch_ops < 1:
            raise SessionError(f"batch_ops must be >= 1, got {self.batch_ops}")
        if not 0.0 < self.shed_watermark <= 1.0:
            raise SessionError(
                f"shed_watermark must be in (0, 1], got {self.shed_watermark}"
            )
        if not 0.0 <= self.apply_watermark < self.shed_watermark:
            raise SessionError(
                "apply_watermark must sit below shed_watermark, got "
                f"{self.apply_watermark} >= {self.shed_watermark}"
            )
        if self.ledger_chunk < 1:
            raise SessionError(f"ledger_chunk must be >= 1, got {self.ledger_chunk}")


@dataclass
class SubmitReceipt:
    """What one :meth:`StreamSession.submit` call did with each op.

    ``accepted + shed + rejected == len(ops)`` always; a shed or rejected
    op was **not** enqueued and will never reach the graph unless the
    client re-submits it.
    """

    accepted: int = 0
    shed: int = 0
    rejected: int = 0
    state: str = APPLY
    depth: int = 0

    @property
    def clean(self) -> bool:
        """Whether every op was accepted."""
        return self.shed == 0 and self.rejected == 0


class StreamSession:
    """Live churn shedding for one client graph; see the module docstring.

    Not constructed directly — use :meth:`SessionManager.open`.  All
    methods must be called from the manager's event loop (the whole
    session layer is single-loop asyncio; nothing here is thread-safe).
    """

    def __init__(
        self,
        session_id: str,
        shedder: IncrementalShedder,
        config: SessionConfig,
        ledger: BudgetLedger,
        charge: int,
    ) -> None:
        self.session_id = session_id
        self.config = config
        self._shedder = shedder
        self._ledger = ledger
        self._charge = charge
        self.metrics = MetricsRegistry()
        self._inbox: "asyncio.Queue[ChurnOp]" = asyncio.Queue(
            maxsize=config.inbox_capacity
        )
        self._state = APPLY
        self._transitions = 0
        self._shed_mark = max(1, int(config.shed_watermark * config.inbox_capacity))
        self._apply_mark = int(config.apply_watermark * config.inbox_capacity)
        self._closed = False
        self._failure: Optional[str] = None
        self._applying = False
        self._queued = False  # in the manager's runnable queue right now
        self._drained = asyncio.Event()
        self._drained.set()
        self._busy_seconds = 0.0
        self._opened_at = time.perf_counter()
        self._last_decision: Optional[DriftDecision] = None
        self._op_hist = self.metrics.histogram("op_seconds", OP_LATENCY_BOUNDS)
        self.metrics.register_gauge("inbox_depth", self._inbox.qsize)
        self.metrics.register_gauge("ledger_charge", lambda: self._charge)
        self.metrics.register_gauge(
            "resident_edges", lambda: self._shedder.graph.num_edges
        )

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def failed(self) -> Optional[str]:
        """The error that killed the session, or ``None`` while healthy."""
        return self._failure

    @property
    def state(self) -> str:
        """Current backpressure state (``apply`` / ``shed`` / ``reject``)."""
        return self._state

    @property
    def shedder(self) -> IncrementalShedder:
        """The underlying maintainer (read-only views are safe to use)."""
        return self._shedder

    @property
    def charge(self) -> int:
        """Resident-edge budget currently held from the shared ledger."""
        return self._charge

    def submit(self, ops: List[ChurnOp]) -> SubmitReceipt:
        """Offer a batch of churn ops; backpressure is applied per op.

        Returns a :class:`SubmitReceipt` accounting for every op — the
        session never drops silently.  Raises
        :class:`~repro.errors.SessionError` on a closed or failed session.
        """
        self._ensure_healthy()
        receipt = SubmitReceipt(state=self._state)
        inbox = self._inbox
        put = inbox.put_nowait
        for op in ops:
            state = self._advance_state(inbox.qsize())
            if state is REJECT:
                receipt.rejected += 1
            elif state is SHED and op[0] == "insert":
                receipt.shed += 1
            else:
                put(op)
                receipt.accepted += 1
        if receipt.accepted:
            self._drained.clear()
            self._on_enqueue(self)
        if receipt.shed:
            self.metrics.counter("inserts_shed_backpressure").inc(receipt.shed)
        if receipt.rejected:
            self.metrics.counter("ops_rejected").inc(receipt.rejected)
        self.metrics.counter("ops_submitted").inc(len(ops))
        receipt.state = self._state
        receipt.depth = inbox.qsize()
        return receipt

    async def flush(self, timeout: Optional[float] = None) -> None:
        """Wait until every accepted op has been applied to the graphs."""
        self._ensure_healthy()
        try:
            if timeout is None:
                await self._drained.wait()
            else:
                await asyncio.wait_for(self._drained.wait(), timeout)
        except asyncio.TimeoutError:
            raise SessionError(
                f"session {self.session_id}: flush timed out after {timeout}s "
                f"({self._inbox.qsize()} ops still queued)"
            ) from None
        self._ensure_healthy()  # the drain may have failed the session

    def telemetry(self) -> Dict[str, Any]:
        """Live per-session observability dict (JSON-serialisable)."""
        shedder = self._shedder
        stats = shedder.stats
        counters = self.metrics.snapshot()["counters"]
        applied = stats["ops"]
        busy = self._busy_seconds
        drift: Dict[str, Any] = {"rebuilds": stats["rebuilds"]}
        decision = self._last_decision
        if decision is not None:
            drift.update(
                delta=decision.delta,
                envelope=decision.envelope,
                threshold=decision.threshold,
                drift=decision.drift,
                armed=decision.armed,
            )
        return {
            "session_id": self.session_id,
            "label": self.config.label,
            "closed": self._closed,
            "failed": self._failure,
            "ops": {
                "submitted": counters.get("ops_submitted", 0),
                "applied": applied,
                "skipped_stale": counters.get("ops_skipped_stale", 0),
                "shed_backpressure": counters.get("inserts_shed_backpressure", 0),
                "shed_budget": counters.get("inserts_shed_budget", 0),
                "rejected": counters.get("ops_rejected", 0),
                "inserts": stats["inserts"],
                "deletes": stats["deletes"],
                "admitted": stats["admitted"],
                "evicted": stats["evicted"],
            },
            "throughput_ops_per_s": (applied / busy) if busy > 0 else 0.0,
            "busy_seconds": busy,
            "latency_us": latency_us_summary(self._op_hist),
            "drift": drift,
            "backpressure": {
                "state": self._state,
                "transitions": self._transitions,
                "depth": self._inbox.qsize(),
                "capacity": self.config.inbox_capacity,
                "shed_mark": self._shed_mark,
                "apply_mark": self._apply_mark,
            },
            "ledger": {
                "charge": self._charge,
                "resident_edges": shedder.graph.num_edges,
            },
            "graph": {
                "nodes": shedder.graph.num_nodes,
                "edges": shedder.graph.num_edges,
                "reduced_edges": shedder.reduced.num_edges,
            },
        }

    def snapshot(self) -> Dict[str, Any]:
        """The current ``G'`` in the service wire shape, plus Δ context.

        ``graph`` is :func:`~repro.graph.io.graph_to_payload` output — the
        same deterministic shape the one-shot service speaks — so the
        snapshot can be shipped, diffed, or rebuilt with
        :func:`~repro.graph.io.graph_from_payload`.
        """
        shedder = self._shedder
        return {
            "session_id": self.session_id,
            "p": self.config.p,
            "method": self.config.method,
            "ops_applied": shedder.stats["ops"],
            "delta": shedder.delta,
            "graph": graph_to_payload(shedder.reduced),
        }

    def export_result(self) -> ReductionResult:
        """Package the live reduction as a detached :class:`ReductionResult`.

        Both graphs are rebuilt through the payload round-trip, so the
        result owns independent copies — handing it to the one-shot
        service's :class:`~repro.service.ArtifactStore` (or any other
        consumer) cannot alias the session's live, still-mutating graphs.
        """
        shedder = self._shedder
        original = graph_from_payload(graph_to_payload(shedder.graph))
        reduced = graph_from_payload(graph_to_payload(shedder.reduced))
        stats: Dict[str, Any] = dict(shedder.stats)
        stats["session_id"] = self.session_id
        stats["session_method"] = self.config.method
        return rescore_result(
            method=f"session-{self.config.method}",
            original=original,
            reduced=reduced,
            p=self.config.p,
            elapsed_seconds=self._busy_seconds,
            stats=stats,
            delta=shedder.delta,
        )

    def export_artifact(self, store: "ArtifactStore") -> "ArtifactKey":
        """Write the detached :meth:`export_result` into an artifact store.

        The key is content-addressed on the session's *final* original
        graph, but a streamed reduction depends on the whole op history,
        not just the final state — so the variant carries the session id
        and op count, keeping streamed artifacts from ever being served
        in place of (or poisoned by) one-shot reductions of the same
        graph.  Returns the key the artifact was stored under.
        """
        result = self.export_result()
        key = store.key_for(
            result.original,
            result.method,
            self.config.p,
            self.config.seed,
            engine="array",
            variant=f"session={self.session_id},ops={result.stats['ops']}",
        )
        store.put(key, result)
        return key

    # ------------------------------------------------------------------
    # Manager-side hooks (single event loop; called by the worker pool)
    # ------------------------------------------------------------------

    #: Set by the manager at registration: called with the session when
    #: ops were enqueued so the drain loop can schedule it.
    _on_enqueue = staticmethod(lambda session: None)

    def _drain_batch(self) -> List[ChurnOp]:
        """Pop up to ``batch_ops`` ops from the inbox (the fairness quantum)."""
        inbox = self._inbox
        get = inbox.get_nowait
        batch: List[ChurnOp] = []
        for _ in range(min(self.config.batch_ops, inbox.qsize())):
            batch.append(get())
        return batch

    def _apply_batch(self, batch: List[ChurnOp]) -> None:
        """Apply one drained batch: fund growth, replay, settle the ledger.

        Runs synchronously on the event loop (bounded by ``batch_ops``).
        A failure marks the session failed and releases its whole ledger
        charge — the shared budget must never leak on a killed session.
        """
        config = self.config
        ledger = self._ledger
        shedder = self._shedder
        inserts = sum(1 for op in batch if op[0] == "insert")
        # Fund the worst-case growth before touching the graph.  Chunked
        # so a steadily growing session amortizes ledger round-trips;
        # when the chunk cannot be funded, fall back to the exact need
        # before shedding anything.
        projected = shedder.graph.num_edges + inserts
        if projected > self._charge:
            need = projected - self._charge
            chunk = config.ledger_chunk
            rounded = ((need + chunk - 1) // chunk) * chunk
            if ledger.try_acquire(rounded):
                self._charge += rounded
            elif ledger.try_acquire(need):
                self._charge += need
            else:
                # Budget exhausted: shed this batch's inserts (explicitly
                # counted), keep the deletes — shrinking is always free.
                self.metrics.counter("inserts_shed_budget").inc(inserts)
                batch = [op for op in batch if op[0] != "insert"]
        started = time.perf_counter()
        try:
            report = shedder.apply_ops(batch, skip_invalid=True)
        except Exception as error:  # noqa: BLE001 — worker must survive
            self._fail(f"{type(error).__name__}: {error}")
            return
        elapsed = time.perf_counter() - started
        self._busy_seconds += elapsed
        if report.applied:
            # One batch-mean sample per batch keeps the histogram cost off
            # the per-op path; the buckets still resolve µs-scale ops.
            self._op_hist.observe(elapsed / report.applied)
        if report.skipped:
            self.metrics.counter("ops_skipped_stale").inc(report.skipped)
        self.metrics.counter("batches_applied").inc()
        if report.decision is not None:
            self._last_decision = report.decision
        # Shrink hysteresis: release surplus only past one spare chunk,
        # and keep that chunk as headroom.
        resident = shedder.graph.num_edges
        chunk = config.ledger_chunk
        surplus = self._charge - resident
        if surplus >= 2 * chunk:
            give_back = ((surplus - chunk) // chunk) * chunk
            ledger.release(give_back)
            self._charge -= give_back

    def _advance_state(self, depth: int) -> str:
        """One backpressure state-machine step at inbox ``depth``."""
        state = self._state
        if state is APPLY:
            if depth >= self.config.inbox_capacity:
                state = REJECT
            elif depth >= self._shed_mark:
                state = SHED
        elif state is SHED:
            if depth >= self.config.inbox_capacity:
                state = REJECT
            elif depth <= self._apply_mark:
                state = APPLY
        else:  # REJECT exits only through the hysteresis mark
            if depth <= self._apply_mark:
                state = APPLY
        if state is not self._state:
            self._state = state
            self._transitions += 1
            self.metrics.counter(f"backpressure_enter_{state}").inc()
        return state

    def _fail(self, reason: str) -> None:
        """Kill the session: record the failure and free every resource."""
        self._failure = reason
        self.metrics.counter("failures").inc()
        self._release_all()

    def _release_all(self) -> None:
        """Idempotently close and hand the whole ledger charge back."""
        if self._closed:
            return
        self._closed = True
        if self._charge:
            self._ledger.release(self._charge)
            self._charge = 0
        # Unblock any flush() waiters; _ensure_healthy reports the state.
        self._drained.set()

    def _ensure_healthy(self) -> None:
        if self._failure is not None:
            raise SessionError(
                f"session {self.session_id} failed: {self._failure}"
            )
        if self._closed:
            raise SessionError(f"session {self.session_id} is closed")
