"""`SessionManager` — multiplexes streaming sessions over a worker pool.

The manager owns everything sessions share:

* the **ledger** — one :class:`~repro.service.BudgetLedger` of resident
  edges across every live session.  A session's charge is acquired
  before its maintainer is built (and released if that build fails),
  resized in chunks as churn grows/shrinks the graph, and handed back in
  full when the session closes or dies — the audit the release-on-failure
  tests pin;
* the **worker pool** — ``num_workers`` asyncio tasks draining a shared
  runnable queue.  A session enters the queue when ops arrive, a worker
  applies at most one ``batch_ops`` quantum, and a still-non-empty
  session re-enters at the tail: fair round-robin at batch granularity,
  so one firehose client cannot starve the rest;
* the **graph loader** — the same ``dataset:`` / ``file:`` ref grammar as
  the one-shot service (:func:`~repro.service.resolve_graph_ref`).

Everything runs on one event loop; `apply_ops` batches execute inline
(bounded by the batch quantum), which is what makes the concurrency
deterministic: interleaving happens only at batch boundaries, and each
session's op order is its submission order, so concurrent sessions
produce exactly the results of running each serially (property-pinned).
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Callable, Dict, List, Optional

from repro.dynamic.drift import DriftMonitor
from repro.dynamic.maintainer import IncrementalShedder
from repro.errors import SessionError
from repro.graph.graph import Graph
from repro.service.admission import BudgetLedger
from repro.service.metrics import MetricsRegistry
from repro.service.request import make_shedder
from repro.service.service import DEFAULT_EDGE_BUDGET, resolve_graph_ref
from repro.service.store import ArtifactStore
from repro.sessions.session import SessionConfig, StreamSession

__all__ = ["SessionManager"]


class SessionManager:
    """Open, drive and close :class:`StreamSession` instances.

    Use as an async context manager::

        async with SessionManager(num_workers=2) as manager:
            session = await manager.open(graph=g, config=SessionConfig(p=0.5))
            session.submit(ops)
            await session.flush()
            print(session.telemetry())

    Args:
        max_resident_edges: global resident-edge budget shared by every
            session (original-graph edges are what the ledger meters,
            matching the one-shot service's accounting).
        num_workers: drain tasks.  More workers only helps when sessions
            await in between (the batches themselves run inline); the
            knob exists so the fairness quantum and the scheduling
            interleave can be tested, not for CPU parallelism.
        graph_loader: override for ``graph_ref`` resolution (defaults to
            the service's :func:`~repro.service.resolve_graph_ref`).
        artifact_store: optional :class:`~repro.service.ArtifactStore`;
            when set, every *graceful* session close exports the final
            detached reduction into it (see
            :meth:`StreamSession.export_artifact`), so streamed results
            land in the same cache the one-shot service serves from.
    """

    def __init__(
        self,
        max_resident_edges: int = DEFAULT_EDGE_BUDGET,
        num_workers: int = 2,
        graph_loader: Optional[Callable[[str, int], Graph]] = None,
        artifact_store: Optional[ArtifactStore] = None,
    ) -> None:
        if num_workers < 1:
            raise SessionError(f"num_workers must be >= 1, got {num_workers}")
        self.ledger = BudgetLedger(max_resident_edges)
        self.metrics = MetricsRegistry()
        self.num_workers = num_workers
        self._graph_loader = graph_loader or resolve_graph_ref
        self.artifact_store = artifact_store
        self._sessions: Dict[str, StreamSession] = {}
        self._ids = itertools.count()
        self._runnable: "asyncio.Queue[StreamSession]" = asyncio.Queue()
        self._workers: List["asyncio.Task[None]"] = []
        self._started = False
        self._closed = False
        self.metrics.register_gauge("open_sessions", lambda: len(self._sessions))
        self.metrics.register_gauge("resident_edges", lambda: self.ledger.in_use)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "SessionManager":
        self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    def start(self) -> None:
        """Spawn the drain workers (idempotent)."""
        if self._started:
            return
        self._started = True
        loop = asyncio.get_running_loop()
        self._workers = [
            loop.create_task(self._worker(), name=f"session-drain-{i}")
            for i in range(self.num_workers)
        ]

    async def close(self) -> None:
        """Flush and close every session, then stop the workers."""
        if self._closed:
            return
        for session in list(self._sessions.values()):
            try:
                await self.close_session(session)
            except SessionError:
                pass  # already failed/closed; its charge is released
        self._closed = True
        for task in self._workers:
            task.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    async def open(
        self,
        config: SessionConfig,
        graph: Optional[Graph] = None,
        graph_ref: Optional[str] = None,
    ) -> StreamSession:
        """Open a streaming session on a graph (inline or by ref).

        Exactly one of ``graph`` / ``graph_ref`` must be given; an inline
        graph is owned by the session from here on (the maintainer's
        contract).  The session's resident-edge charge is acquired before
        the seed reduction runs and released if that build fails, so a
        failed open can never leak budget.
        """
        if self._closed:
            raise SessionError("session manager is closed")
        if not self._started:
            raise SessionError("session manager is not started (use `async with`)")
        if (graph is None) == (graph_ref is None):
            raise SessionError("exactly one of graph / graph_ref must be given")
        config.validate()
        if graph is None:
            assert graph_ref is not None
            try:
                graph = await asyncio.to_thread(
                    self._graph_loader, graph_ref, config.seed
                )
            except Exception as error:
                raise SessionError(
                    f"could not resolve graph ref {graph_ref!r}: {error}"
                ) from error
        charge = graph.num_edges
        if charge > self.ledger.capacity:
            raise SessionError(
                f"graph has {charge} edges, over the {self.ledger.capacity}-edge "
                "session budget"
            )
        if not self.ledger.try_acquire(charge):
            raise SessionError(
                f"cannot fund {charge} resident edges "
                f"({self.ledger.in_use}/{self.ledger.capacity} in use)"
            )
        try:
            shedder = await asyncio.to_thread(self._build_shedder, graph, config)
        except BaseException:
            self.ledger.release(charge)  # release-on-failure contract
            raise
        session_id = f"s{next(self._ids)}"
        session = StreamSession(
            session_id=session_id,
            shedder=shedder,
            config=config,
            ledger=self.ledger,
            charge=charge,
        )
        session._on_enqueue = self._schedule
        self._sessions[session_id] = session
        self.metrics.counter("sessions_opened").inc()
        return session

    async def close_session(
        self, session: StreamSession, force: bool = False
    ) -> Dict[str, Any]:
        """Close a session and return its final telemetry.

        A graceful close drains the inbox first; ``force=True`` abandons
        queued ops (they are counted as rejected — never silently lost).
        Either way the session's whole ledger charge is released, even
        when it already died mid-churn.

        With an :attr:`artifact_store` configured, a graceful close of a
        healthy session also exports the final detached reduction into
        the store (payload round-trip, so nothing aliases the dying
        session); the returned telemetry gains an ``artifact`` entry with
        the store key token.  Forced and failed closes export nothing —
        their final graph does not reflect every accepted op.
        """
        self._sessions.pop(session.session_id, None)
        exported_key = None
        if session.failed is None and not session.closed:
            if force:
                abandoned = len(session._drain_batch())
                while not session._inbox.empty():
                    abandoned += len(session._drain_batch())
                if abandoned:
                    session.metrics.counter("ops_rejected").inc(abandoned)
            else:
                await session.flush()
                if self.artifact_store is not None:
                    exported_key = await asyncio.to_thread(
                        session.export_artifact, self.artifact_store
                    )
                    self.metrics.counter("artifacts_exported").inc()
        session._release_all()
        self.metrics.counter("sessions_closed").inc()
        telemetry = session.telemetry()
        if exported_key is not None:
            telemetry["artifact"] = {
                "token": exported_key.token,
                "method": exported_key.method,
                "variant": exported_key.variant,
            }
        return telemetry

    def get(self, session_id: str) -> StreamSession:
        """Look up an open session by id."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"no open session {session_id!r}") from None

    def telemetry(self) -> Dict[str, Any]:
        """Manager-level snapshot plus every open session's telemetry."""
        snapshot = self.metrics.snapshot()
        snapshot["budget"] = {
            "capacity_edges": self.ledger.capacity,
            "in_use_edges": self.ledger.in_use,
            "waits": self.ledger.waits,
        }
        snapshot["sessions"] = {
            session_id: session.telemetry()
            for session_id, session in sorted(self._sessions.items())
        }
        return snapshot

    # ------------------------------------------------------------------
    # Drain loop
    # ------------------------------------------------------------------

    def _schedule(self, session: StreamSession) -> None:
        """Enqueue a session for draining (at most once at a time)."""
        if not session._queued and not session.closed:
            session._queued = True
            self._runnable.put_nowait(session)

    async def _worker(self) -> None:
        while True:
            session = await self._runnable.get()
            session._queued = False
            if session.closed:
                continue
            batch = session._drain_batch()
            if batch:
                session._applying = True
                try:
                    session._apply_batch(batch)
                finally:
                    session._applying = False
            if session.closed:
                continue  # the batch failed the session; charge released
            # Draining is what relieves backpressure: step the state
            # machine at the new depth so hysteresis exits happen here,
            # not lazily at the client's next submit.
            session._advance_state(session._inbox.qsize())
            if not session._inbox.empty():
                self._schedule(session)  # tail of the queue: round-robin
            else:
                session._drained.set()
            # Yield so sibling workers and submitters interleave even
            # when batches complete without awaiting.
            await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _build_shedder(graph: Graph, config: SessionConfig) -> IncrementalShedder:
        """Seed the maintainer per the session config (runs off-loop)."""
        shedder = make_shedder(
            config.method, seed=config.seed, engine=config.engine
        )
        monitor = DriftMonitor(
            config.p,
            drift_ratio=config.drift_ratio,
            hysteresis=config.drift_hysteresis,
            cooldown_ops=config.drift_cooldown_ops,
        )
        return IncrementalShedder(
            graph,
            config.p,
            shedder,
            repair=config.repair,
            drift=monitor,
            reservoir_size=config.reservoir_size,
            seed=config.seed,
        )
