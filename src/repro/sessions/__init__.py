"""Streaming sessions: live edge-churn shedding as a service.

The one-shot service (:mod:`repro.service`) answers "shed *this* graph
once"; :mod:`repro.sessions` keeps the answer alive.  A client opens a
:class:`StreamSession` on a graph (inline, or the service's
``dataset:``/``file:`` ref grammar), streams batched insert/delete ops
into a bounded inbox, and reads live Δ/drift telemetry while a
:class:`SessionManager` worker pool drains every open session fairly,
batch by batch, through :meth:`~repro.dynamic.IncrementalShedder
.apply_ops`.

The layer's three contracts:

* **Determinism** — a paced session (one that never trips backpressure)
  produces a ``G'`` bit-identical to driving the maintainer directly
  with the same op sequence, and concurrent sessions produce exactly
  their serial per-session results (both property-pinned).
* **Explicit backpressure** — the inbox fill level drives an
  ``apply`` → ``shed`` → ``reject`` state machine with hysteresis;
  under pressure inserts are *shed* (the paper's move, applied to the
  ingest path) and everything is counted and surfaced, never dropped
  silently.
* **Budget accounting** — every session holds a resident-edge charge in
  the shared :class:`~repro.service.BudgetLedger`: acquired before its
  seed reduction runs, resized in chunks under churn, and released in
  full on close *and* on every failure path.
"""

from repro.sessions.manager import SessionManager
from repro.sessions.session import (
    APPLY,
    REJECT,
    SHED,
    SessionConfig,
    StreamSession,
    SubmitReceipt,
)

__all__ = [
    "APPLY",
    "REJECT",
    "SHED",
    "SessionConfig",
    "SessionManager",
    "StreamSession",
    "SubmitReceipt",
]
