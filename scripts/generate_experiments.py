#!/usr/bin/env python
"""Run every registered experiment and regenerate RESULTS.md.

Usage:
    python scripts/generate_experiments.py [--full] [--seed 0]
                                           [--only tab8,fig4]
                                           [--output RESULTS.md]

Writes one JSON report per experiment under ``benchmarks/reports/json/``
and a consolidated markdown document (default ``RESULTS.md``) with every
table.  ``--full`` uses the registry-default dataset scales (slow).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.reporting import render_markdown, save_report_json

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="full-size profile (slow)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", help="comma-separated experiment ids to run")
    parser.add_argument("--output", default=str(REPO_ROOT / "RESULTS.md"))
    args = parser.parse_args(argv)

    if args.only:
        wanted = [token.strip() for token in args.only.split(",") if token.strip()]
        unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
        if unknown:
            parser.error(f"unknown experiments: {', '.join(unknown)}")
        experiments = {key: ALL_EXPERIMENTS[key] for key in wanted}
    else:
        experiments = dict(ALL_EXPERIMENTS)

    json_dir = REPO_ROOT / "benchmarks" / "reports" / "json"
    json_dir.mkdir(parents=True, exist_ok=True)

    sections = [
        "# RESULTS — regenerated experiment tables",
        "",
        f"profile: {'full' if args.full else 'quick'}; seed: {args.seed}.",
        "See EXPERIMENTS.md for the paper-vs-measured discussion.",
        "",
    ]
    for key, runner in experiments.items():
        start = time.perf_counter()
        report = runner(quick=not args.full, seed=args.seed)
        elapsed = time.perf_counter() - start
        save_report_json(report, json_dir / f"{report.experiment_id}.json")
        sections.append(render_markdown(report))
        sections.append("")
        print(f"{key}: done in {elapsed:.1f}s", file=sys.stderr)

    Path(args.output).write_text("\n".join(sections), encoding="utf-8")
    print(f"wrote {args.output} ({len(experiments)} experiments)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
