#!/usr/bin/env python
"""Render the accumulated ``BENCH_PR*.json`` files into one markdown report.

Each PR's micro-benchmark (``benchmarks/test_micro_*.py``) drops raw
numbers into ``BENCH_PR<n>.json`` at the repo root.  The shapes differ per
experiment, so this report is deliberately schema-light:

* a **trajectory table** up front — one row per (PR, section) with the
  section's headline figure (``speedup`` where the experiment measures a
  before/after pair, ``factor`` where it bounds an overhead,
  ``aggregate_ops_per_s`` for throughput runs);
* a **detail section** per file listing every scalar metric as recorded,
  with ``graph`` sub-dicts flattened to one line.

Usage::

    python scripts/bench_report.py                  # markdown to stdout
    python scripts/bench_report.py --output docs/bench_report.md
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_FILE_RE = re.compile(r"BENCH_PR(\d+)\.json$")


def _fmt(value) -> str:
    """Compact scalar rendering: trim float noise, keep everything else."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.1f}"
    if abs(value) < 0.001:
        return f"{value:.3g}"
    return f"{value:.4g}"


def _flatten_graph(graph: dict) -> str:
    """One-line description of a section's ``graph`` sub-dict."""
    return " ".join(f"{key}={_fmt(value)}" for key, value in graph.items())


def _headline(section: dict) -> str:
    """The figure a reader scans for: speedup > overhead factor > throughput."""
    if "speedup" in section:
        return f"{_fmt(section['speedup'])}x speedup"
    if "factor" in section:
        floor = section.get("floor_factor")
        bound = f" (floor {_fmt(floor)}x)" if floor is not None else ""
        return f"{_fmt(section['factor'])}x overhead{bound}"
    if "aggregate_ops_per_s" in section:
        return f"{_fmt(section['aggregate_ops_per_s'])} ops/s"
    for key, value in section.items():
        if key.endswith("_seconds") and isinstance(value, (int, float)):
            return f"{key}={_fmt(value)}"
    return "-"


def _sections(data: dict):
    """Yield (name, section) pairs; top-level scalars become one section."""
    scalars = {
        key: value
        for key, value in data.items()
        if key != "experiment" and not isinstance(value, (dict, list))
    }
    top_graph = data.get("graph")
    if scalars:
        section = dict(scalars)
        if isinstance(top_graph, dict):
            section["graph"] = top_graph
        yield "(top level)", section
    for key, value in data.items():
        if key != "graph" and isinstance(value, dict):
            yield key, value


def _detail_lines(name: str, section: dict):
    yield f"### `{name}`"
    yield ""
    graph = section.get("graph")
    if isinstance(graph, dict):
        yield f"- graph: {_flatten_graph(graph)}"
    for key, value in section.items():
        if key == "graph" or isinstance(value, (dict, list)):
            continue
        yield f"- {key}: {_fmt(value)}"
    yield ""


def render(root: Path) -> str:
    files = sorted(
        (
            (int(_FILE_RE.match(path.name).group(1)), path)
            for path in root.glob("BENCH_PR*.json")
            if _FILE_RE.match(path.name)
        ),
        key=lambda pair: pair[0],
    )
    lines = ["# Benchmark trajectory", ""]
    if not files:
        lines.append(f"No BENCH_PR*.json files found under {root}.")
        lines.append("")
        return "\n".join(lines)

    reports = []
    for number, path in files:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            reports.append((number, path, None, f"unreadable: {exc}"))
            continue
        reports.append((number, path, data, None))

    lines += [
        "| PR | experiment | section | headline |",
        "|---:|---|---|---|",
    ]
    for number, path, data, error in reports:
        if error is not None:
            lines.append(f"| {number} | `{path.name}` | - | {error} |")
            continue
        experiment = data.get("experiment", path.stem)
        for name, section in _sections(data):
            lines.append(
                f"| {number} | {experiment} | {name} | {_headline(section)} |"
            )
    lines.append("")

    for number, path, data, error in reports:
        if error is not None:
            continue
        experiment = data.get("experiment", path.stem)
        lines.append(f"## PR {number} — {experiment} (`{path.name}`)")
        lines.append("")
        for name, section in _sections(data):
            lines.extend(_detail_lines(name, section))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=REPO_ROOT,
        help="directory holding BENCH_PR*.json (default: repo root)",
    )
    parser.add_argument(
        "--output",
        default="-",
        help="output path, or '-' for stdout (default)",
    )
    args = parser.parse_args(argv)
    report = render(args.root)
    if args.output == "-":
        sys.stdout.write(report)
    else:
        Path(args.output).write_text(report, encoding="utf-8")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
