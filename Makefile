.PHONY: install test bench bench-full results clean

install:
	pip install -e '.[test]'

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only

results:
	python scripts/generate_experiments.py

clean:
	rm -rf build dist *.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
